//! Sharded multi-stream execution — many independent [`Engine`] streams on
//! a thread pool.
//!
//! The paper's quality manager controls *one* stream (one video being
//! encoded, one audio packet pipeline). A production deployment serves
//! many: different inputs, different seeds, different manager
//! configurations, all independent of one another. The natural scaling
//! unit is therefore the **whole stream**, not the action: each worker
//! thread owns a complete monomorphized [`Engine`] run with its own
//! virtual clock and its own [`RunSummary`], and nothing is shared between
//! streams but the read-only compiled tables. This bounds per-worker state
//! the same way the symbolic tables bound per-decision work — scale comes
//! from replicating small independent state, not from locking shared
//! state.
//!
//! The layer is deliberately small:
//!
//! * [`StreamSpec`] — what one stream runs: a caller-defined workload
//!   payload (which system, which manager, which execution-time model)
//!   plus the parameters every stream has (seed, cycle count).
//! * [`FleetRunner`] — partitions a spec list over `N` OS threads via
//!   [`std::thread::scope`] (no extra dependencies, no unsafe). Large
//!   fleets pull the next un-run stream from a shared
//!   cacheline-padded atomic cursor, so uneven stream lengths balance
//!   automatically; small fleets (≤ [`STATIC_SHARD_MAX_STREAMS`]) shard
//!   statically round-robin instead — see the constant's docs for when
//!   each wins. Both paths write results into per-stream slots by index,
//!   so the choice never changes the output.
//! * [`FleetSummary`] — per-stream [`RunSummary`]s in **submission order**
//!   (deterministic regardless of thread scheduling) plus the
//!   [`RunSummary::merge`]d aggregate.
//!
//! Per-cycle interleaving of *live* streams (arrival-ordered scheduling,
//! global admission control) is the next layer up: [`crate::elastic`].
//!
//! Determinism: a stream's result depends only on its spec (the virtual
//! platform is seeded, the engine is single-threaded), so the fleet's
//! output is byte-identical for every worker count — a property the
//! workspace pins with a property test (`tests/fleet.rs`).
//!
//! [`Engine`]: crate::engine::Engine

use crate::engine::RunSummary;
use crate::source::ArrivalSpec;
use crate::time::Time;
use crate::trace::ActionRecord;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads and aligns `T` to a 64-byte cache line so adjacent values never
/// share one — the classic false-sharing fix for hot atomics that sit
/// next to each other in a `Vec` (the fleet's work-pulling cursor, the
/// elastic scheduler's per-worker ring cursors).
///
/// Dereferences to `T`, so call sites stay unchanged:
///
/// ```
/// use sqm_core::fleet::CachePadded;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let cursor = CachePadded::new(AtomicUsize::new(0));
/// assert_eq!(cursor.fetch_add(1, Ordering::Relaxed), 0);
/// assert_eq!(std::mem::align_of_val(&cursor), 64);
/// ```
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    pub fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Fleets with at most this many streams are sharded **statically**
/// (worker `w` runs streams `w, w + N, w + 2N, …`); larger fleets pull
/// from the shared atomic cursor.
///
/// Static sharding wins for small fleets: there is no cursor cache line
/// to bounce between cores, and with few streams per worker the dynamic
/// path's balancing cannot recoup that traffic — whichever worker drew
/// the longest stream bounds the makespan either way. Dynamic pulling
/// wins once fleets are deep enough that stream-length skew matters:
/// a worker that finishes early takes over queued streams instead of
/// idling. The crossover is workload-dependent; 32 is a conservative
/// point where per-stream work still dominates scheduling cost. Both
/// paths fill the same submission-order slots, so results are identical
/// — only wall-clock changes.
pub const STATIC_SHARD_MAX_STREAMS: usize = 32;

/// One independent stream: a workload payload plus the run parameters
/// every stream shares.
///
/// `W` is whatever the caller needs to reconstruct the stream's engine —
/// typically an enum naming a system/manager pairing, or a reference to a
/// prepared experiment. It must be [`Sync`] because workers borrow specs
/// across threads; compiled tables and systems are plain data, so sharing
/// them by reference is the intended pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamSpec<W> {
    /// Caller-defined payload selecting the system, manager configuration
    /// and execution-time source for this stream.
    pub workload: W,
    /// Seed for the stream's stochastic execution-time model.
    pub seed: u64,
    /// Cycles (frames / packets) to run.
    pub cycles: usize,
    /// How the stream's cycles arrive: [`ArrivalSpec::Closed`] (the
    /// default) runs the engine's closed loop; any other pattern makes
    /// the drive closure feed the stream through a
    /// [`crate::stream::StreamingRunner`] — the pattern is plain data, so
    /// specs stay `Copy` and shareable across worker threads.
    pub arrival: ArrivalSpec,
}

impl<W> StreamSpec<W> {
    /// A closed-loop spec (today's behaviour): the engine chains cycles
    /// itself; no event source involved.
    pub fn new(workload: W, seed: u64, cycles: usize) -> StreamSpec<W> {
        StreamSpec {
            workload,
            seed,
            cycles,
            arrival: ArrivalSpec::Closed,
        }
    }

    /// The same stream fed by an event source with the given arrival
    /// pattern.
    pub fn with_arrival(mut self, arrival: ArrivalSpec) -> StreamSpec<W> {
        self.arrival = arrival;
        self
    }
}

/// Per-worker scratch storage, reused across every stream the worker runs.
///
/// The fleet runner clears [`records`](StreamScratch::records) before each
/// stream but never shrinks it, so a worker reaches zero steady-state
/// allocation after its largest stream: wrap it in a
/// [`RecordBuffer`](crate::engine::RecordBuffer) inside the drive closure
/// to capture per-action records, or ignore it and stream into a
/// [`NullSink`](crate::engine::NullSink).
///
/// Cacheline-aligned: each worker owns one, and the alignment keeps two
/// workers' scratch headers (length/capacity words the hot record loop
/// rewrites) from ever sharing a line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct StreamScratch {
    /// Reusable record storage for one stream's trace.
    pub records: Vec<ActionRecord>,
}

/// Everything a finished fleet run reports: per-stream summaries in
/// submission order and their merged aggregate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetSummary {
    per_stream: Vec<RunSummary>,
    aggregate: RunSummary,
}

impl FleetSummary {
    /// Assemble a summary from per-stream results in submission order.
    ///
    /// This is what [`FleetRunner::run`] returns; it is public so serial
    /// reference paths (tests, benches) can build the identical structure
    /// without a runner.
    pub fn from_streams(per_stream: Vec<RunSummary>) -> FleetSummary {
        let mut aggregate = RunSummary::default();
        for s in &per_stream {
            aggregate.merge(s);
        }
        FleetSummary {
            per_stream,
            aggregate,
        }
    }

    /// Number of streams that ran.
    pub fn n_streams(&self) -> usize {
        self.per_stream.len()
    }

    /// Per-stream summaries, indexed by submission order.
    pub fn per_stream(&self) -> &[RunSummary] {
        &self.per_stream
    }

    /// One stream's summary.
    pub fn stream(&self, i: usize) -> &RunSummary {
        &self.per_stream[i]
    }

    /// The [`RunSummary::merge`]d whole-fleet aggregate.
    pub fn aggregate(&self) -> &RunSummary {
        &self.aggregate
    }

    /// `true` when no stream missed a deadline.
    pub fn miss_free(&self) -> bool {
        self.aggregate.misses == 0
    }

    /// The worst per-stream deadline-miss count (0 for an empty fleet).
    pub fn max_stream_misses(&self) -> usize {
        self.per_stream.iter().map(|s| s.misses).max().unwrap_or(0)
    }

    /// The worst per-stream QM overhead ratio (0 for an empty fleet).
    pub fn max_stream_overhead_ratio(&self) -> f64 {
        self.per_stream
            .iter()
            .map(RunSummary::overhead_ratio)
            .fold(0.0, f64::max)
    }

    /// Total virtual-platform time the fleet's streams occupy a processor:
    /// the sum over streams of `qm_overhead + busy`. This is the serial
    /// makespan — what one worker needs on the virtual platform.
    pub fn serial_virtual_time(&self) -> Time {
        self.per_stream.iter().map(|s| s.qm_overhead + s.busy).sum()
    }

    /// The virtual-platform makespan of running this fleet on `workers`
    /// processors with the runner's scheduling discipline (workers pull
    /// streams in submission order; each stream goes to the
    /// earliest-free worker). Deterministic — a modeled quantity computed
    /// from the per-stream summaries, independent of host scheduling.
    pub fn virtual_makespan(&self, workers: usize) -> Time {
        let workers = workers.clamp(1, self.per_stream.len().max(1));
        let mut free = vec![Time::ZERO; workers];
        for s in &self.per_stream {
            let w = (0..workers).min_by_key(|&w| free[w]).expect("workers ≥ 1");
            free[w] += s.qm_overhead + s.busy;
        }
        free.into_iter().max().unwrap_or(Time::ZERO)
    }

    /// Aggregate-throughput speedup of `workers` workers over one, in the
    /// virtual-platform time domain:
    /// `serial_virtual_time / virtual_makespan(workers)`. With many
    /// similar streams this approaches `workers`.
    pub fn virtual_speedup(&self, workers: usize) -> f64 {
        let serial = self.serial_virtual_time().as_ns();
        let makespan = self.virtual_makespan(workers).as_ns();
        if makespan > 0 {
            serial as f64 / makespan as f64
        } else {
            1.0
        }
    }
}

/// Runs a fleet of independent streams across a fixed-size pool of scoped
/// OS threads.
///
/// The runner owns no stream state: the caller supplies a *drive* closure
/// that turns one [`StreamSpec`] into a [`RunSummary`] — typically by
/// constructing a monomorphized [`Engine`](crate::engine::Engine) over
/// shared read-only tables and running it to completion. The closure runs
/// concurrently on multiple threads, so it must be [`Sync`] and take only
/// `&self` captures.
///
/// # Examples
///
/// Shard four seeds of one workload over two workers; the aggregate is
/// identical to running them back to back:
///
/// ```
/// use sqm_core::controller::{ConstantExec, OverheadModel};
/// use sqm_core::engine::{CycleChaining, Engine, NullSink};
/// use sqm_core::fleet::{FleetRunner, StreamSpec};
/// use sqm_core::manager::NumericManager;
/// use sqm_core::policy::MixedPolicy;
/// use sqm_core::system::SystemBuilder;
/// use sqm_core::time::Time;
///
/// let sys = SystemBuilder::new(2)
///     .action("decode", &[100, 200], &[60, 120])
///     .action("render", &[100, 200], &[60, 120])
///     .deadline_last(Time::from_ns(500))
///     .build()
///     .unwrap();
/// let policy = MixedPolicy::new(&sys);
///
/// let specs: Vec<StreamSpec<()>> = (0..4)
///     .map(|seed| StreamSpec::new((), seed, 3))
///     .collect();
///
/// let fleet = FleetRunner::new(2).run(&specs, |spec, _scratch| {
///     let manager = NumericManager::new(&sys, &policy);
///     Engine::new(&sys, manager, OverheadModel::ZERO).run_cycles(
///         spec.cycles,
///         Time::from_ns(500),
///         CycleChaining::WorkConserving,
///         &mut ConstantExec::average(sys.table()),
///         &mut NullSink,
///     )
/// });
///
/// assert_eq!(fleet.n_streams(), 4);
/// assert_eq!(fleet.aggregate().cycles, 12);
/// assert!(fleet.miss_free());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FleetRunner {
    workers: usize,
}

impl FleetRunner {
    /// A runner with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> FleetRunner {
        FleetRunner {
            workers: workers.max(1),
        }
    }

    /// A runner sized to the host's available parallelism (1 when the host
    /// does not report it).
    pub fn with_available_parallelism() -> FleetRunner {
        FleetRunner::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run every spec through `drive`, distributing streams over the
    /// worker pool, and collect the results in submission order.
    ///
    /// With one worker (or one spec) no threads are spawned — the streams
    /// run inline on the caller's thread, which is also the serial
    /// reference path the multi-worker output is guaranteed to match.
    pub fn run<W, F>(&self, specs: &[StreamSpec<W>], drive: F) -> FleetSummary
    where
        W: Sync + fmt::Debug,
        F: Fn(&StreamSpec<W>, &mut StreamScratch) -> RunSummary + Sync,
    {
        let workers = self.workers.min(specs.len().max(1));
        let mut slots: Vec<Option<RunSummary>> = specs.iter().map(|_| None).collect();
        if workers == 1 {
            let mut scratch = StreamScratch::default();
            for (slot, spec) in slots.iter_mut().zip(specs) {
                scratch.records.clear();
                *slot = Some(drive(spec, &mut scratch));
            }
        } else {
            // Small fleets shard statically (no shared cursor traffic);
            // deep fleets pull dynamically so stream-length skew balances.
            // See `STATIC_SHARD_MAX_STREAMS` for the trade-off; the padded
            // cursor keeps the dynamic path's hot atomic off every other
            // shared line.
            let dynamic = specs.len() > STATIC_SHARD_MAX_STREAMS;
            let cursor = CachePadded::new(AtomicUsize::new(0));
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let cursor = &cursor;
                        let drive = &drive;
                        scope.spawn(move || {
                            let mut scratch = StreamScratch::default();
                            let mut local = Vec::new();
                            let mut next_static = w;
                            loop {
                                let i = if dynamic {
                                    cursor.fetch_add(1, Ordering::Relaxed)
                                } else {
                                    let i = next_static;
                                    next_static += workers;
                                    i
                                };
                                let Some(spec) = specs.get(i) else {
                                    break Ok(local);
                                };
                                scratch.records.clear();
                                // Catch per-stream panics so the join can
                                // say *which* stream failed, not just that
                                // some worker died.
                                match catch_unwind(AssertUnwindSafe(|| drive(spec, &mut scratch))) {
                                    Ok(summary) => local.push((i, summary)),
                                    Err(payload) => break Err((i, panic_message(payload))),
                                }
                            }
                        })
                    })
                    .collect();
                for handle in handles {
                    match handle.join().expect("fleet worker died outside drive") {
                        Ok(local) => {
                            for (i, summary) in local {
                                slots[i] = Some(summary);
                            }
                        }
                        Err((i, message)) => panic!(
                            "fleet worker panicked on stream {i} (workload {:?}, seed {}): {message}",
                            specs[i].workload, specs[i].seed,
                        ),
                    }
                }
            });
        }
        FleetSummary::from_streams(
            slots
                .into_iter()
                .map(|s| s.expect("every stream ran exactly once"))
                .collect(),
        )
    }
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// string literal or a formatted `String` — anything else keeps a
/// placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ConstantExec, OverheadModel};
    use crate::engine::{CycleChaining, Engine, NullSink, RecordBuffer};
    use crate::manager::NumericManager;
    use crate::policy::MixedPolicy;
    use crate::system::{ParameterizedSystem, SystemBuilder};

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(3)
            .action("a", &[10, 25, 40], &[4, 9, 14])
            .action("b", &[12, 22, 35], &[6, 11, 17])
            .action("c", &[8, 18, 28], &[3, 8, 12])
            .deadline_last(Time::from_ns(110))
            .build()
            .unwrap()
    }

    fn drive(
        sys: &ParameterizedSystem,
        policy: &MixedPolicy,
        spec: &StreamSpec<u8>,
        scratch: &mut StreamScratch,
    ) -> RunSummary {
        let manager = NumericManager::new(sys, policy);
        let mut sink = RecordBuffer::new(&mut scratch.records);
        Engine::new(sys, manager, OverheadModel::ZERO).run_cycles(
            spec.cycles,
            Time::from_ns(110),
            CycleChaining::WorkConserving,
            // Seed-dependent but deterministic actual times.
            &mut crate::controller::FnExec(|cycle, action, q| {
                let wc = sys.table().wc(action, q).as_ns();
                let f = 40 + ((spec.seed as usize + cycle + action) % 50) as i64;
                Time::from_ns(wc * f / 100)
            }),
            &mut sink,
        )
    }

    fn specs(n: usize) -> Vec<StreamSpec<u8>> {
        (0..n)
            .map(|i| StreamSpec::new((i % 3) as u8, i as u64 * 17, 2 + i % 4))
            .collect()
    }

    #[test]
    fn worker_counts_agree_byte_for_byte() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let specs = specs(9);
        let serial = FleetRunner::new(1).run(&specs, |spec, scratch| drive(&s, &p, spec, scratch));
        assert_eq!(serial.n_streams(), 9);
        for workers in 2..=8 {
            let fleet =
                FleetRunner::new(workers).run(&specs, |spec, scratch| drive(&s, &p, spec, scratch));
            assert_eq!(serial, fleet, "workers = {workers}");
        }
    }

    /// A fleet deep enough for the dynamic (cursor-pulling) path produces
    /// the same submission-order results as the serial reference — the
    /// static/dynamic shard choice is invisible in the output.
    #[test]
    fn dynamic_path_agrees_with_serial_beyond_the_static_bound() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let specs = specs(STATIC_SHARD_MAX_STREAMS + 7);
        let serial = FleetRunner::new(1).run(&specs, |spec, scratch| drive(&s, &p, spec, scratch));
        for workers in 2..=4 {
            let fleet =
                FleetRunner::new(workers).run(&specs, |spec, scratch| drive(&s, &p, spec, scratch));
            assert_eq!(serial, fleet, "workers = {workers}");
        }
    }

    #[test]
    fn aggregate_is_merged_per_stream() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let specs = specs(5);
        let fleet = FleetRunner::new(3).run(&specs, |spec, scratch| drive(&s, &p, spec, scratch));
        let mut manual = RunSummary::default();
        for stream in fleet.per_stream() {
            manual.merge(stream);
        }
        assert_eq!(&manual, fleet.aggregate());
        let total_cycles: usize = specs.iter().map(|sp| sp.cycles).sum();
        assert_eq!(fleet.aggregate().cycles, total_cycles);
    }

    #[test]
    fn empty_fleet_is_default() {
        let fleet = FleetRunner::new(4).run::<(), _>(&[], |_, _| RunSummary::default());
        assert_eq!(fleet, FleetSummary::default());
        assert_eq!(fleet.serial_virtual_time(), Time::ZERO);
        assert_eq!(fleet.virtual_makespan(4), Time::ZERO);
    }

    #[test]
    fn more_workers_than_streams_is_fine() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let specs = specs(2);
        let fleet = FleetRunner::new(16).run(&specs, |spec, scratch| drive(&s, &p, spec, scratch));
        assert_eq!(fleet.n_streams(), 2);
    }

    #[test]
    fn virtual_makespan_models_list_scheduling() {
        // Four equal streams: two workers halve the makespan exactly.
        let even = RunSummary {
            busy: Time::from_ns(100),
            ..RunSummary::default()
        };
        let fleet = FleetSummary::from_streams(vec![even; 4]);
        assert_eq!(fleet.serial_virtual_time(), Time::from_ns(400));
        assert_eq!(fleet.virtual_makespan(1), Time::from_ns(400));
        assert_eq!(fleet.virtual_makespan(2), Time::from_ns(200));
        assert_eq!(fleet.virtual_makespan(4), Time::from_ns(100));
        assert!((fleet.virtual_speedup(4) - 4.0).abs() < 1e-12);
        // The makespan never drops below the longest stream.
        let long = RunSummary {
            busy: Time::from_ns(1_000),
            ..RunSummary::default()
        };
        let skewed = FleetSummary::from_streams(vec![long, even, even, even]);
        assert_eq!(skewed.virtual_makespan(8), Time::from_ns(1_000));
    }

    #[test]
    fn scratch_capacity_is_reused_within_a_worker() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let specs = specs(6);
        // Single worker ⇒ one scratch services all streams; capture its
        // capacity trajectory to show it only grows.
        let caps = std::sync::Mutex::new(Vec::new());
        FleetRunner::new(1).run(&specs, |spec, scratch| {
            let summary = drive(&s, &p, spec, scratch);
            caps.lock().unwrap().push(scratch.records.capacity());
            summary
        });
        let caps = caps.into_inner().unwrap();
        assert!(caps.windows(2).all(|w| w[1] >= w[0]), "capacity only grows");
    }

    /// A worker panic must name the failing stream: index, workload
    /// payload and seed — not just "a worker panicked".
    #[test]
    fn worker_panic_names_the_failing_stream() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let specs = specs(6);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            FleetRunner::new(3).run(&specs, |spec, scratch| {
                if spec.seed == 17 * 4 {
                    panic!("injected failure in stream body");
                }
                drive(&s, &p, spec, scratch)
            })
        }));
        let message = panic_message(result.expect_err("the fleet must propagate the panic"));
        assert!(
            message.contains("stream 4"),
            "panic names the stream index: {message}"
        );
        assert!(
            message.contains("workload 1") && message.contains("seed 68"),
            "panic names the payload and seed: {message}"
        );
        assert!(
            message.contains("injected failure in stream body"),
            "panic preserves the original message: {message}"
        );
    }

    #[test]
    fn stats_helpers() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let fleet = FleetRunner::new(2).run(&specs(4), |spec, _scratch| {
            let manager = NumericManager::new(&s, &p);
            let mut sink = NullSink;
            Engine::new(
                &s,
                manager,
                OverheadModel::new(Time::from_ns(2), Time::from_ns(1)),
            )
            .run_cycles(
                spec.cycles,
                Time::from_ns(110),
                CycleChaining::WorkConserving,
                &mut ConstantExec::average(s.table()),
                &mut sink,
            )
        });
        assert!(fleet.miss_free());
        assert_eq!(fleet.max_stream_misses(), 0);
        assert!(fleet.max_stream_overhead_ratio() > 0.0);
        assert!(fleet.max_stream_overhead_ratio() >= fleet.aggregate().overhead_ratio());
    }
}
