//! Quality Managers — the online controllers `Γ`.
//!
//! A Quality Manager observes the current state `(s_i, t_i)` and returns the
//! quality level for the next action (Definition 2). Three implementations
//! mirror the paper's §4.1 experiment:
//!
//! * [`NumericManager`] — re-computes `tD(s_i, q)` **online** at every call
//!   by scanning the remaining actions, for each probed quality level. This
//!   is the paper's baseline whose overhead motivates the symbolic method.
//! * [`LookupManager`] — uses the pre-computed quality region table
//!   ([`crate::regions::QualityRegionTable`]): at most `|Q|` integer
//!   comparisons per call.
//! * [`RelaxedManager`] — additionally consults the control relaxation
//!   table ([`crate::relaxation::RelaxationTable`]) and asks the controller
//!   to skip the next `r − 1` calls entirely.
//!
//! All three are *equivalent in their choices* — they realize the same
//! function `Γ` (property-tested in the workspace integration tests); they
//! differ only in work per call, which the controller charges to the clock
//! through an [`crate::controller::OverheadModel`].

use crate::policy::Policy;
use crate::quality::Quality;
use crate::regions::QualityRegionTable;
use crate::relaxation::RelaxationTable;
use crate::system::ParameterizedSystem;
use crate::time::Time;

pub use crate::manager_smooth::SmoothedManager;

/// The outcome of one Quality Manager invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Quality level for the next `hold` actions.
    pub quality: Quality,
    /// How many consecutive actions this decision covers (`≥ 1`). Plain
    /// managers return 1; the relaxed manager returns the relaxation step
    /// `r` of Proposition 3.
    pub hold: usize,
    /// Elementary work units spent making the decision (suffix-scan
    /// iterations for the numeric manager, table probes for the symbolic
    /// ones). The controller converts this into time overhead.
    pub work: u64,
    /// `true` when not even `qmin` satisfied the policy constraint — the
    /// state lies outside every quality region. Under correct worst-case
    /// estimates this cannot happen; it is surfaced for fault injection
    /// experiments.
    pub infeasible: bool,
}

/// An online quality manager: `Γ(s_i, t_i) = q_{i+1}`.
pub trait QualityManager {
    /// Decide the quality for the next action, given `state` (actions
    /// completed so far within the cycle) and the elapsed cycle time `t`.
    fn decide(&mut self, state: usize, t: Time) -> Decision;

    /// Identifier used in benchmark reports.
    fn name(&self) -> &'static str;

    /// Reset any per-cycle internal state (none of the built-in managers
    /// carry state across calls, but adaptive extensions may).
    fn reset(&mut self) {}
}

/// The paper's numeric Quality Manager: straight online evaluation of the
/// mixed policy at every call.
#[derive(Clone, Debug)]
pub struct NumericManager<'a, P: Policy> {
    policy: &'a P,
    n_quality: usize,
}

impl<'a, P: Policy> NumericManager<'a, P> {
    /// A numeric manager for `sys` driven by `policy`.
    pub fn new(sys: &ParameterizedSystem, policy: &'a P) -> NumericManager<'a, P> {
        NumericManager {
            policy,
            n_quality: sys.qualities().len(),
        }
    }
}

impl<P: Policy> QualityManager for NumericManager<'_, P> {
    fn decide(&mut self, state: usize, t: Time) -> Decision {
        let mut work = 0;
        for qi in (0..self.n_quality).rev() {
            let q = Quality::new(qi as u8);
            let (td, w) = self.policy.t_d_scan(state, q);
            work += w;
            if td >= t {
                return Decision {
                    quality: q,
                    hold: 1,
                    work,
                    infeasible: false,
                };
            }
        }
        Decision {
            quality: Quality::MIN,
            hold: 1,
            work,
            infeasible: true,
        }
    }

    fn name(&self) -> &'static str {
        "numeric"
    }
}

/// Symbolic Quality Manager over pre-computed quality regions: pure table
/// lookups (Proposition 2).
#[derive(Clone, Debug)]
pub struct LookupManager<'a> {
    table: &'a QualityRegionTable,
}

impl<'a> LookupManager<'a> {
    /// A lookup manager over a compiled region table.
    pub fn new(table: &'a QualityRegionTable) -> LookupManager<'a> {
        LookupManager { table }
    }
}

impl QualityManager for LookupManager<'_> {
    fn decide(&mut self, state: usize, t: Time) -> Decision {
        let (choice, probes) = self.table.choose(state, t);
        match choice {
            Some(quality) => Decision {
                quality,
                hold: 1,
                work: probes,
                infeasible: false,
            },
            None => Decision {
                quality: Quality::MIN,
                hold: 1,
                work: probes,
                infeasible: true,
            },
        }
    }

    fn name(&self) -> &'static str {
        "regions"
    }
}

/// Symbolic Quality Manager with control relaxation: after the region
/// lookup it probes the relaxation table for the largest admissible step
/// `r ∈ ρ` and asks the controller to hold the chosen quality for `r`
/// actions (Proposition 3).
#[derive(Clone, Debug)]
pub struct RelaxedManager<'a> {
    regions: &'a QualityRegionTable,
    relaxation: &'a RelaxationTable,
}

impl<'a> RelaxedManager<'a> {
    /// A relaxed manager over compiled region + relaxation tables.
    pub fn new(
        regions: &'a QualityRegionTable,
        relaxation: &'a RelaxationTable,
    ) -> RelaxedManager<'a> {
        debug_assert_eq!(regions.n_states(), relaxation.n_states());
        RelaxedManager {
            regions,
            relaxation,
        }
    }
}

impl QualityManager for RelaxedManager<'_> {
    fn decide(&mut self, state: usize, t: Time) -> Decision {
        let (choice, probes) = self.regions.choose(state, t);
        match choice {
            Some(quality) => {
                let (r, r_probes) = self.relaxation.choose_relaxation(state, t, quality);
                let remaining = self.regions.n_states() - state;
                Decision {
                    quality,
                    hold: r.min(remaining).max(1),
                    work: probes + r_probes,
                    infeasible: false,
                }
            }
            None => Decision {
                quality: Quality::MIN,
                hold: 1,
                work: probes,
                infeasible: true,
            },
        }
    }

    fn name(&self) -> &'static str {
        "relaxation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MixedPolicy;
    use crate::relaxation::StepSet;
    use crate::system::{ParameterizedSystem, SystemBuilder};

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(3)
            .action("a", &[10, 25, 40], &[4, 9, 14])
            .action("b", &[12, 22, 35], &[6, 11, 17])
            .action("c", &[8, 18, 28], &[3, 8, 12])
            .action("d", &[15, 24, 33], &[7, 12, 16])
            .deadline_last(Time::from_ns(130))
            .build()
            .unwrap()
    }

    #[test]
    fn numeric_chooses_maximal_feasible_quality() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let mut m = NumericManager::new(&s, &p);
        let d = m.decide(0, Time::ZERO);
        assert!(!d.infeasible);
        assert_eq!(d.hold, 1);
        // The decision must satisfy the policy, and the next level up must not.
        assert!(p.t_d(0, d.quality) >= Time::ZERO);
        if d.quality != s.qualities().max() {
            assert!(p.t_d(0, d.quality.up()) < Time::ZERO);
        }
    }

    #[test]
    fn numeric_flags_infeasible_states() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let mut m = NumericManager::new(&s, &p);
        let d = m.decide(0, Time::from_secs(10));
        assert!(d.infeasible);
        assert_eq!(d.quality, Quality::MIN);
    }

    #[test]
    fn all_managers_agree_pointwise() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let regions = QualityRegionTable::from_policy(&s, &p);
        let relaxation = RelaxationTable::compile(&s, &regions, StepSet::new(vec![1, 2]).unwrap());
        let mut numeric = NumericManager::new(&s, &p);
        let mut lookup = LookupManager::new(&regions);
        let mut relaxed = RelaxedManager::new(&regions, &relaxation);
        for state in 0..4 {
            for t_ns in -20..150 {
                let t = Time::from_ns(t_ns);
                let dn = numeric.decide(state, t);
                let dl = lookup.decide(state, t);
                let dr = relaxed.decide(state, t);
                assert_eq!(dn.quality, dl.quality, "state {state} t {t}");
                assert_eq!(dn.quality, dr.quality, "state {state} t {t}");
                assert_eq!(dn.infeasible, dl.infeasible);
                assert_eq!(dn.infeasible, dr.infeasible);
                assert!(dr.hold >= 1 && state + dr.hold <= 4);
            }
        }
    }

    #[test]
    fn symbolic_work_is_bounded_numeric_work_is_not() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let regions = QualityRegionTable::from_policy(&s, &p);
        let mut numeric = NumericManager::new(&s, &p);
        let mut lookup = LookupManager::new(&regions);
        // Late time forces the numeric manager to probe every quality level,
        // each probe scanning the whole remaining suffix.
        let t = Time::from_ns(125);
        let dn = numeric.decide(0, t);
        let dl = lookup.decide(0, t);
        assert!(dn.work > dl.work);
        assert!(dl.work <= 3, "lookup work bounded by |Q|");
    }

    #[test]
    fn manager_names() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let regions = QualityRegionTable::from_policy(&s, &p);
        let relaxation = RelaxationTable::compile(&s, &regions, StepSet::new(vec![1]).unwrap());
        assert_eq!(NumericManager::new(&s, &p).name(), "numeric");
        assert_eq!(LookupManager::new(&regions).name(), "regions");
        assert_eq!(
            RelaxedManager::new(&regions, &relaxation).name(),
            "relaxation"
        );
    }
}
