//! Quality Managers — the online controllers `Γ`.
//!
//! A Quality Manager observes the current state `(s_i, t_i)` and returns the
//! quality level for the next action (Definition 2). Three implementations
//! mirror the paper's §4.1 experiment:
//!
//! * [`NumericManager`] — re-computes `tD(s_i, q)` **online** at every call
//!   by scanning the remaining actions, for each probed quality level. This
//!   is the paper's baseline whose overhead motivates the symbolic method.
//! * [`LookupManager`] — uses the pre-computed quality region table
//!   ([`crate::regions::QualityRegionTable`]): at most `|Q|` integer
//!   comparisons per call.
//! * [`RelaxedManager`] — additionally consults the control relaxation
//!   table ([`crate::relaxation::RelaxationTable`]) and asks the controller
//!   to skip the next `r − 1` calls entirely.
//!
//! Two **hot-path** variants, [`HotLookupManager`] and
//! [`HotRelaxedManager`], make the same choices as their symbolic
//! counterparts but resume each probe from the previous decision instead
//! of rescanning from `qmax` — amortized O(1) host work per decision.
//! Their [`Decision::work`] stays the *analytic* top-down probe count
//! ([`QualityRegionTable::scan_work`]), so every virtual-time quantity is
//! byte-identical to the plain managers'.
//!
//! All managers are *equivalent in their choices* — they realize the same
//! function `Γ` (property-tested in the workspace integration tests); they
//! differ only in work per call, which the controller charges to the clock
//! through an [`crate::controller::OverheadModel`].

use crate::policy::Policy;
use crate::quality::Quality;
use crate::regions::QualityRegionTable;
use crate::relaxation::RelaxationTable;
use crate::system::ParameterizedSystem;
use crate::time::Time;

pub use crate::manager_smooth::SmoothedManager;

/// The outcome of one Quality Manager invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Quality level for the next `hold` actions.
    pub quality: Quality,
    /// How many consecutive actions this decision covers (`≥ 1`). Plain
    /// managers return 1; the relaxed manager returns the relaxation step
    /// `r` of Proposition 3.
    pub hold: usize,
    /// Elementary work units *charged* for the decision — the paper's
    /// abstract cost model: suffix-scan iterations for the numeric manager,
    /// top-down table probes for the symbolic ones. For the symbolic
    /// managers this is defined **analytically** from the chosen quality
    /// (`|Q| − q` probes, see
    /// [`crate::regions::QualityRegionTable::scan_work`]), *not* from the
    /// host work actually performed — which is how the incremental
    /// fast-path managers stay byte-identical in the virtual time domain
    /// while doing strictly less host work. The controller converts this
    /// into time overhead.
    pub work: u64,
    /// `true` when not even `qmin` satisfied the policy constraint — the
    /// state lies outside every quality region. Under correct worst-case
    /// estimates this cannot happen; it is surfaced for fault injection
    /// experiments.
    pub infeasible: bool,
}

/// An online quality manager: `Γ(s_i, t_i) = q_{i+1}`.
pub trait QualityManager {
    /// Decide the quality for the next action, given `state` (actions
    /// completed so far within the cycle) and the elapsed cycle time `t`.
    fn decide(&mut self, state: usize, t: Time) -> Decision;

    /// Identifier used in benchmark reports.
    fn name(&self) -> &'static str;

    /// Reset any per-cycle internal state (none of the built-in managers
    /// carry state across calls, but adaptive extensions may).
    fn reset(&mut self) {}
}

/// The paper's numeric Quality Manager: straight online evaluation of the
/// mixed policy at every call.
#[derive(Clone, Debug)]
pub struct NumericManager<'a, P: Policy> {
    policy: &'a P,
    n_quality: usize,
}

impl<'a, P: Policy> NumericManager<'a, P> {
    /// A numeric manager for `sys` driven by `policy`.
    pub fn new(sys: &ParameterizedSystem, policy: &'a P) -> NumericManager<'a, P> {
        NumericManager {
            policy,
            n_quality: sys.qualities().len(),
        }
    }
}

impl<P: Policy> QualityManager for NumericManager<'_, P> {
    fn decide(&mut self, state: usize, t: Time) -> Decision {
        let mut work = 0;
        for qi in (0..self.n_quality).rev() {
            let q = Quality::new(qi as u8);
            let (td, w) = self.policy.t_d_scan(state, q);
            work += w;
            if td >= t {
                return Decision {
                    quality: q,
                    hold: 1,
                    work,
                    infeasible: false,
                };
            }
        }
        Decision {
            quality: Quality::MIN,
            hold: 1,
            work,
            infeasible: true,
        }
    }

    fn name(&self) -> &'static str {
        "numeric"
    }
}

/// Symbolic Quality Manager over pre-computed quality regions: pure table
/// lookups (Proposition 2).
#[derive(Clone, Debug)]
pub struct LookupManager<'a> {
    table: &'a QualityRegionTable,
}

impl<'a> LookupManager<'a> {
    /// A lookup manager over a compiled region table.
    pub fn new(table: &'a QualityRegionTable) -> LookupManager<'a> {
        LookupManager { table }
    }
}

impl QualityManager for LookupManager<'_> {
    fn decide(&mut self, state: usize, t: Time) -> Decision {
        let (choice, probes) = self.table.choose(state, t);
        match choice {
            Some(quality) => Decision {
                quality,
                hold: 1,
                work: probes,
                infeasible: false,
            },
            None => Decision {
                quality: Quality::MIN,
                hold: 1,
                work: probes,
                infeasible: true,
            },
        }
    }

    fn name(&self) -> &'static str {
        "regions"
    }
}

/// Symbolic Quality Manager with control relaxation: after the region
/// lookup it probes the relaxation table for the largest admissible step
/// `r ∈ ρ` and asks the controller to hold the chosen quality for `r`
/// actions (Proposition 3).
#[derive(Clone, Debug)]
pub struct RelaxedManager<'a> {
    regions: &'a QualityRegionTable,
    relaxation: &'a RelaxationTable,
}

impl<'a> RelaxedManager<'a> {
    /// A relaxed manager over compiled region + relaxation tables.
    pub fn new(
        regions: &'a QualityRegionTable,
        relaxation: &'a RelaxationTable,
    ) -> RelaxedManager<'a> {
        debug_assert_eq!(regions.n_states(), relaxation.n_states());
        RelaxedManager {
            regions,
            relaxation,
        }
    }
}

impl QualityManager for RelaxedManager<'_> {
    fn decide(&mut self, state: usize, t: Time) -> Decision {
        let (choice, probes) = self.regions.choose(state, t);
        match choice {
            Some(quality) => {
                let (r, r_probes) = self.relaxation.choose_relaxation(state, t, quality);
                let remaining = self.regions.n_states() - state;
                Decision {
                    quality,
                    hold: r.min(remaining).max(1),
                    work: probes + r_probes,
                    infeasible: false,
                }
            }
            None => Decision {
                quality: Quality::MIN,
                hold: 1,
                work: probes,
                infeasible: true,
            },
        }
    }

    fn name(&self) -> &'static str {
        "relaxation"
    }
}

/// Amortized-O(1) symbolic Quality Manager: realizes the same `Γ` as
/// [`LookupManager`] but resumes each probe from the previously chosen
/// quality ([`QualityRegionTable::choose_from`]) instead of rescanning
/// from `qmax`. The charged [`Decision::work`] is the analytic top-down
/// probe count ([`QualityRegionTable::scan_work`]), so runs are
/// byte-identical to [`LookupManager`]'s in the virtual time domain while
/// the host-side search cost stops scaling with `|Q|`.
///
/// # Examples
///
/// ```
/// use sqm_core::compiler::compile_regions;
/// use sqm_core::manager::{HotLookupManager, LookupManager, QualityManager};
/// use sqm_core::system::SystemBuilder;
/// use sqm_core::time::Time;
///
/// let sys = SystemBuilder::new(3)
///     .action("a", &[10, 25, 40], &[4, 9, 14])
///     .action("b", &[12, 22, 35], &[6, 11, 17])
///     .deadline_last(Time::from_ns(80))
///     .build()
///     .unwrap();
/// let regions = compile_regions(&sys);
/// let mut naive = LookupManager::new(&regions);
/// let mut hot = HotLookupManager::new(&regions);
/// for (state, t) in [(0, 0), (1, 30)] {
///     // Identical decisions *and* identical charged work.
///     assert_eq!(hot.decide(state, Time::from_ns(t)), naive.decide(state, Time::from_ns(t)));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct HotLookupManager<'a> {
    table: &'a QualityRegionTable,
    hint: Quality,
}

impl<'a> HotLookupManager<'a> {
    /// A hot lookup manager over a compiled region table.
    pub fn new(table: &'a QualityRegionTable) -> HotLookupManager<'a> {
        // The hint walk is only exact on Proposition-2 monotone rows;
        // policy-compiled tables always have them, hand-built `from_raw`
        // tables might not.
        debug_assert!(table.rows_monotone(), "choose_from needs monotone rows");
        HotLookupManager {
            table,
            hint: table.qualities().max(),
        }
    }
}

impl QualityManager for HotLookupManager<'_> {
    fn decide(&mut self, state: usize, t: Time) -> Decision {
        let choice = self.table.choose_from(state, t, self.hint);
        let work = self.table.scan_work(choice);
        match choice {
            Some(quality) => {
                self.hint = quality;
                Decision {
                    quality,
                    hold: 1,
                    work,
                    infeasible: false,
                }
            }
            None => {
                self.hint = Quality::MIN;
                Decision {
                    quality: Quality::MIN,
                    hold: 1,
                    work,
                    infeasible: true,
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "regions-hot"
    }

    fn reset(&mut self) {
        // A fresh cycle restarts the budget; resume from `qmax` like the
        // naive scan's first probe.
        self.hint = self.table.qualities().max();
    }
}

/// Amortized-O(1) relaxed manager: the fast-path sibling of
/// [`RelaxedManager`]. Both the region probe and the relaxation-step probe
/// resume from the previous decision
/// ([`QualityRegionTable::choose_from`] /
/// [`RelaxationTable::choose_relaxation_from`]); the charged work is the
/// analytic scan count of each table, so holds, overheads and every
/// summary byte match [`RelaxedManager`]'s.
///
/// # Examples
///
/// ```
/// use sqm_core::compiler::{compile_regions, compile_relaxation};
/// use sqm_core::manager::{HotRelaxedManager, QualityManager, RelaxedManager};
/// use sqm_core::relaxation::StepSet;
/// use sqm_core::system::SystemBuilder;
/// use sqm_core::time::Time;
///
/// let sys = SystemBuilder::new(2)
///     .action("a", &[10, 20], &[4, 9])
///     .action("b", &[12, 22], &[6, 11])
///     .action("c", &[8, 18], &[3, 8])
///     .deadline_last(Time::from_ns(90))
///     .build()
///     .unwrap();
/// let regions = compile_regions(&sys);
/// let relax = compile_relaxation(&sys, &regions, StepSet::new(vec![1, 2]).unwrap());
/// let mut naive = RelaxedManager::new(&regions, &relax);
/// let mut hot = HotRelaxedManager::new(&regions, &relax);
/// assert_eq!(hot.decide(0, Time::ZERO), naive.decide(0, Time::ZERO));
/// ```
#[derive(Clone, Debug)]
pub struct HotRelaxedManager<'a> {
    regions: &'a QualityRegionTable,
    relaxation: &'a RelaxationTable,
    hint_q: Quality,
    hint_ri: usize,
}

impl<'a> HotRelaxedManager<'a> {
    /// A hot relaxed manager over compiled region + relaxation tables.
    pub fn new(
        regions: &'a QualityRegionTable,
        relaxation: &'a RelaxationTable,
    ) -> HotRelaxedManager<'a> {
        debug_assert_eq!(regions.n_states(), relaxation.n_states());
        // Both hint walks need the compiled tables' monotone/nested
        // structure (see `HotLookupManager::new`).
        debug_assert!(regions.rows_monotone(), "choose_from needs monotone rows");
        debug_assert!(
            relaxation.nested_over_rho(),
            "choose_relaxation_from needs ρ-nested intervals"
        );
        HotRelaxedManager {
            regions,
            relaxation,
            hint_q: regions.qualities().max(),
            hint_ri: relaxation.rho().len() - 1,
        }
    }
}

impl QualityManager for HotRelaxedManager<'_> {
    fn decide(&mut self, state: usize, t: Time) -> Decision {
        let choice = self.regions.choose_from(state, t, self.hint_q);
        let probes = self.regions.scan_work(choice);
        match choice {
            Some(quality) => {
                self.hint_q = quality;
                let found = self
                    .relaxation
                    .choose_relaxation_from(state, t, quality, self.hint_ri);
                let r_probes = self.relaxation.scan_work(found);
                let r = match found {
                    Some(ri) => {
                        self.hint_ri = ri;
                        self.relaxation.rho().steps()[ri]
                    }
                    None => {
                        self.hint_ri = 0;
                        1
                    }
                };
                let remaining = self.regions.n_states() - state;
                Decision {
                    quality,
                    hold: r.min(remaining).max(1),
                    work: probes + r_probes,
                    infeasible: false,
                }
            }
            None => {
                self.hint_q = Quality::MIN;
                Decision {
                    quality: Quality::MIN,
                    hold: 1,
                    work: probes,
                    infeasible: true,
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "relaxation-hot"
    }

    fn reset(&mut self) {
        self.hint_q = self.regions.qualities().max();
        self.hint_ri = self.relaxation.rho().len() - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MixedPolicy;
    use crate::relaxation::StepSet;
    use crate::system::{ParameterizedSystem, SystemBuilder};

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(3)
            .action("a", &[10, 25, 40], &[4, 9, 14])
            .action("b", &[12, 22, 35], &[6, 11, 17])
            .action("c", &[8, 18, 28], &[3, 8, 12])
            .action("d", &[15, 24, 33], &[7, 12, 16])
            .deadline_last(Time::from_ns(130))
            .build()
            .unwrap()
    }

    #[test]
    fn numeric_chooses_maximal_feasible_quality() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let mut m = NumericManager::new(&s, &p);
        let d = m.decide(0, Time::ZERO);
        assert!(!d.infeasible);
        assert_eq!(d.hold, 1);
        // The decision must satisfy the policy, and the next level up must not.
        assert!(p.t_d(0, d.quality) >= Time::ZERO);
        if d.quality != s.qualities().max() {
            assert!(p.t_d(0, d.quality.up()) < Time::ZERO);
        }
    }

    #[test]
    fn numeric_flags_infeasible_states() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let mut m = NumericManager::new(&s, &p);
        let d = m.decide(0, Time::from_secs(10));
        assert!(d.infeasible);
        assert_eq!(d.quality, Quality::MIN);
    }

    #[test]
    fn all_managers_agree_pointwise() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let regions = QualityRegionTable::from_policy(&s, &p);
        let relaxation = RelaxationTable::compile(&s, &regions, StepSet::new(vec![1, 2]).unwrap());
        let mut numeric = NumericManager::new(&s, &p);
        let mut lookup = LookupManager::new(&regions);
        let mut relaxed = RelaxedManager::new(&regions, &relaxation);
        for state in 0..4 {
            for t_ns in -20..150 {
                let t = Time::from_ns(t_ns);
                let dn = numeric.decide(state, t);
                let dl = lookup.decide(state, t);
                let dr = relaxed.decide(state, t);
                assert_eq!(dn.quality, dl.quality, "state {state} t {t}");
                assert_eq!(dn.quality, dr.quality, "state {state} t {t}");
                assert_eq!(dn.infeasible, dl.infeasible);
                assert_eq!(dn.infeasible, dr.infeasible);
                assert!(dr.hold >= 1 && state + dr.hold <= 4);
            }
        }
    }

    #[test]
    fn symbolic_work_is_bounded_numeric_work_is_not() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let regions = QualityRegionTable::from_policy(&s, &p);
        let mut numeric = NumericManager::new(&s, &p);
        let mut lookup = LookupManager::new(&regions);
        // Late time forces the numeric manager to probe every quality level,
        // each probe scanning the whole remaining suffix.
        let t = Time::from_ns(125);
        let dn = numeric.decide(0, t);
        let dl = lookup.decide(0, t);
        assert!(dn.work > dl.work);
        assert!(dl.work <= 3, "lookup work bounded by |Q|");
    }

    #[test]
    fn hot_managers_match_naive_managers_decision_for_decision() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let regions = QualityRegionTable::from_policy(&s, &p);
        let relaxation = RelaxationTable::compile(&s, &regions, StepSet::new(vec![1, 2]).unwrap());
        let mut lookup = LookupManager::new(&regions);
        let mut hot_lookup = HotLookupManager::new(&regions);
        let mut relaxed = RelaxedManager::new(&regions, &relaxation);
        let mut hot_relaxed = HotRelaxedManager::new(&regions, &relaxation);
        // Sweep *sequentially* without resets so the hot managers' hints
        // carry real state between calls, including the infeasible tail.
        for state in 0..4 {
            for t_ns in -20..200 {
                let t = Time::from_ns(t_ns);
                assert_eq!(
                    hot_lookup.decide(state, t),
                    lookup.decide(state, t),
                    "lookup state {state} t {t}"
                );
                assert_eq!(
                    hot_relaxed.decide(state, t),
                    relaxed.decide(state, t),
                    "relaxed state {state} t {t}"
                );
            }
        }
        // And after a cycle reset.
        hot_lookup.reset();
        lookup.reset();
        assert_eq!(
            hot_lookup.decide(0, Time::ZERO),
            lookup.decide(0, Time::ZERO)
        );
    }

    #[test]
    fn manager_names() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let regions = QualityRegionTable::from_policy(&s, &p);
        let relaxation = RelaxationTable::compile(&s, &regions, StepSet::new(vec![1]).unwrap());
        assert_eq!(NumericManager::new(&s, &p).name(), "numeric");
        assert_eq!(LookupManager::new(&regions).name(), "regions");
        assert_eq!(
            RelaxedManager::new(&regions, &relaxation).name(),
            "relaxation"
        );
        assert_eq!(HotLookupManager::new(&regions).name(), "regions-hot");
        assert_eq!(
            HotRelaxedManager::new(&regions, &relaxation).name(),
            "relaxation-hot"
        );
    }
}
