//! Event-driven streaming execution — pulls cycles from an
//! [`ArrivalSource`] onto the shared [`Engine`], with a bounded backlog
//! queue and overload policies.
//!
//! This is the live-operation front-end the paper's quality-manager
//! argument is ultimately about: cycles arrive from capture hardware at
//! times the controller does not choose, queue while the engine is busy,
//! and — under overload — must be shed deliberately rather than by
//! accident. The runner generalizes [`CycleChaining`]:
//!
//! * a [`Periodic`](crate::source::Periodic) source with the
//!   [`OverloadPolicy::Block`] policy reproduces [`Engine::run_cycles`]
//!   **byte-for-byte** under both chaining variants (pinned by test);
//! * any other source models irregular traffic, and the backlog/latency
//!   aggregates in [`StreamStats`] quantify what the closed loop hides.
//!
//! ## Time model
//!
//! The runner keeps one absolute clock. Frame `c` with arrival `A_c` is
//! anchored at `A_c`: the engine runs the cycle with a start *relative to
//! the frame's arrival*, so the system's deadlines read "within `D` of
//! arrival" — exactly the closed loop's per-period deadlines when arrivals
//! are periodic.
//!
//! * [`CycleChaining::WorkConserving`] (file encode): input is
//!   pre-buffered, the engine never idles — a frame may start *before* its
//!   arrival timestamp (negative relative start = banked budget). No frame
//!   is ever dropped; the backlog is the storage.
//! * [`CycleChaining::ArrivalClamped`] (live capture): a frame starts at
//!   `max(previous finish, A_c)`. Frames arriving while the engine is busy
//!   wait in a queue bounded by [`StreamConfig::capacity`] (the frame in
//!   service does not count); an arrival that finds the queue full is
//!   resolved by the [`OverloadPolicy`].
//!
//! Everything is deterministic: results depend only on the source, the
//! seeds and the config — never on host scheduling — so streaming runs
//! shard over [`crate::fleet::FleetRunner`] workers unchanged.
//!
//! [`CycleChaining`]: crate::engine::CycleChaining
//! [`CycleChaining::WorkConserving`]: crate::engine::CycleChaining::WorkConserving
//! [`CycleChaining::ArrivalClamped`]: crate::engine::CycleChaining::ArrivalClamped

use crate::controller::ExecutionTimeSource;
use crate::engine::{CycleChaining, Engine, RunSummary, TraceSink};
use crate::manager::QualityManager;
use crate::source::ArrivalSource;
use crate::time::Time;
use std::collections::VecDeque;

/// What to do when a frame arrives and the backlog queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Backpressure the producer: the frame waits upstream and is
    /// delivered losslessly once space frees. Processing order and start
    /// times are identical to an unbounded queue (the queue-depth
    /// aggregate still reports true demand), which makes `Block` the
    /// policy under which streaming is equivalent to the closed loop.
    #[default]
    Block,
    /// Drop the arriving frame (tail drop): the backlog keeps the oldest
    /// frames, favouring in-order completeness over freshness.
    DropNewest,
    /// Drop the *entire* backlog and keep only the arriving frame: the
    /// live-video discipline — when behind, skip to the latest input.
    SkipToLatest,
}

impl OverloadPolicy {
    /// Display label for reports.
    pub fn label(self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::DropNewest => "drop-newest",
            OverloadPolicy::SkipToLatest => "skip-to-latest",
        }
    }
}

/// How a [`StreamingRunner`] chains, queues and sheds cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// How cycle starts chain onto arrivals (see the module docs).
    pub chaining: CycleChaining,
    /// Backlog bound: how many frames may *wait* (the frame in service is
    /// not counted). Clamped to at least 1. Ignored under
    /// [`CycleChaining::WorkConserving`], where input is pre-buffered.
    pub capacity: usize,
    /// Resolution for arrivals that find the queue full. Ignored under
    /// [`CycleChaining::WorkConserving`].
    pub policy: OverloadPolicy,
}

impl StreamConfig {
    /// The closed loop's configuration: work-conserving chaining, no
    /// effective backlog bound. With a periodic source this is
    /// byte-identical to [`Engine::run_cycles`].
    pub fn closed_loop() -> StreamConfig {
        StreamConfig {
            chaining: CycleChaining::WorkConserving,
            capacity: usize::MAX,
            policy: OverloadPolicy::Block,
        }
    }

    /// Live capture: arrival-clamped starts, a backlog of `capacity`
    /// waiting frames, overload resolved by `policy`.
    pub fn live(capacity: usize, policy: OverloadPolicy) -> StreamConfig {
        StreamConfig {
            chaining: CycleChaining::ArrivalClamped,
            capacity,
            policy,
        }
    }
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig::closed_loop()
    }
}

/// Backlog and latency aggregates of one streaming run — the quantities
/// the closed loop cannot express, accumulated in place (no allocation
/// beyond the runner's queue).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames the source delivered.
    pub arrived: usize,
    /// Frames the engine executed.
    pub processed: usize,
    /// Frames shed by the overload policy (`arrived = processed + dropped`
    /// once the source is drained).
    pub dropped: usize,
    /// Deepest the waiting queue ever got (frame in service not counted).
    pub max_backlog: usize,
    /// Total time processed frames spent waiting between arrival and
    /// start (0 for frames started at or before their arrival).
    pub total_wait: Time,
    /// Worst single frame's wait.
    pub max_wait: Time,
    /// Total arrival-to-completion latency over processed frames
    /// (clamped at 0 for frames completed before arrival under
    /// work-conserving prefetch).
    pub total_latency: Time,
    /// Worst single frame's arrival-to-completion latency.
    pub max_latency: Time,
    /// Absolute completion time of the last processed frame.
    pub makespan: Time,
}

impl StreamStats {
    /// Mean wait per processed frame, in nanoseconds.
    pub fn avg_wait_ns(&self) -> f64 {
        self.total_wait.as_ns() as f64 / self.processed.max(1) as f64
    }

    /// Mean arrival-to-completion latency per processed frame, in
    /// nanoseconds.
    pub fn avg_latency_ns(&self) -> f64 {
        self.total_latency.as_ns() as f64 / self.processed.max(1) as f64
    }

    /// Fraction of arrived frames shed by the overload policy.
    pub fn drop_rate(&self) -> f64 {
        self.dropped as f64 / self.arrived.max(1) as f64
    }

    /// Fold another run's aggregates into this one (the fleet reduction —
    /// counters add, extrema take the max, mirroring
    /// [`RunSummary::merge`]).
    pub fn merge(&mut self, other: &StreamStats) {
        self.arrived += other.arrived;
        self.processed += other.processed;
        self.dropped += other.dropped;
        self.max_backlog = self.max_backlog.max(other.max_backlog);
        self.total_wait += other.total_wait;
        self.max_wait = self.max_wait.max(other.max_wait);
        self.total_latency += other.total_latency;
        self.max_latency = self.max_latency.max(other.max_latency);
        self.makespan = self.makespan.max(other.makespan);
    }
}

/// Everything a finished streaming run reports: the engine's
/// [`RunSummary`] (identical in meaning to the closed loop's) plus the
/// streaming-only [`StreamStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// The engine's whole-run aggregates over the *processed* frames.
    pub run: RunSummary,
    /// Backlog/latency aggregates of the arrival process.
    pub stats: StreamStats,
}

/// Per-stream execution state for anchoring cycles at arrivals — the
/// reusable core of [`StreamingRunner`]'s pull loop, factored out so
/// schedulers that interleave *many* streams ([`crate::elastic`]) can
/// advance one stream a single cycle at a time and still be byte-identical
/// to the per-stream runner.
///
/// A cursor owns exactly the state the time model in the module docs
/// needs: the stream's absolute clock (`now` = completion time of the last
/// executed frame), the accumulating [`RunSummary`] and the
/// [`StreamStats`]. The caller supplies arrivals and runs the engine; the
/// cursor answers "when does the next frame start" ([`StreamCursor::
/// start_for`]) and folds each executed cycle back in
/// ([`StreamCursor::absorb`]).
///
/// # Examples
///
/// Drive one cycle by hand — arrival at 100 ns, engine produces a cycle
/// summary, and the cursor advances its clock to arrival + relative end:
///
/// ```
/// use sqm_core::engine::{CycleChaining, CycleSummary};
/// use sqm_core::stream::StreamCursor;
/// use sqm_core::time::Time;
///
/// let mut cursor = StreamCursor::new();
/// let arrival = Time::from_ns(100);
/// let start = cursor.start_for(CycleChaining::ArrivalClamped, arrival);
/// assert_eq!(start, arrival, "idle stream starts at the arrival");
/// // ... run the engine with start - arrival, obtaining a CycleSummary ...
/// # let mut summary = CycleSummary::new(0, start - arrival);
/// # summary.end = Time::from_ns(40);
/// cursor.absorb(arrival, start, &summary);
/// assert_eq!(cursor.now(), Time::from_ns(140));
/// assert_eq!(cursor.summary().stats.processed, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamCursor {
    now: Time,
    summary: StreamSummary,
}

impl StreamCursor {
    /// A fresh stream: clock at zero, empty aggregates.
    pub fn new() -> StreamCursor {
        StreamCursor::default()
    }

    /// The stream's absolute clock: completion time of the last executed
    /// frame ([`Time::ZERO`] before any frame ran).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Absolute start time of a frame with arrival `arrival` executed
    /// next: `max(now, arrival)` under live capture
    /// ([`CycleChaining::ArrivalClamped`]), `now` under work-conserving
    /// prefetch (the frame may start before it arrives).
    pub fn start_for(&self, chaining: CycleChaining, arrival: Time) -> Time {
        match chaining {
            CycleChaining::ArrivalClamped => self.now.max(arrival),
            CycleChaining::WorkConserving => self.now,
        }
    }

    /// Record one frame delivered by the source.
    pub fn note_arrival(&mut self) {
        self.summary.stats.arrived += 1;
    }

    /// Record one frame shed by an overload/admission policy.
    pub fn note_drop(&mut self) {
        self.note_drops(1);
    }

    /// Record `n` frames shed at once (queue-clearing policies).
    pub fn note_drops(&mut self, n: usize) {
        self.summary.stats.dropped += n;
    }

    /// Record an observed waiting-queue depth (frame in service not
    /// counted); the stats keep the high-water mark.
    pub fn note_backlog(&mut self, depth: usize) {
        self.summary.stats.max_backlog = self.summary.stats.max_backlog.max(depth);
    }

    /// Fold one executed cycle into the stream: advance the clock to
    /// `arrival + cycle.end` (the cycle's end is arrival-relative) and
    /// accumulate the run and wait/latency aggregates. `start_abs` must be
    /// the value [`StreamCursor::start_for`] returned for this frame.
    pub fn absorb(&mut self, arrival: Time, start_abs: Time, cycle: &crate::engine::CycleSummary) {
        self.summary.run.absorb(cycle);
        self.now = arrival + cycle.end;
        let s = &mut self.summary.stats;
        s.processed += 1;
        let wait = (start_abs - arrival).max(Time::ZERO);
        s.total_wait += wait;
        s.max_wait = s.max_wait.max(wait);
        let latency = (self.now - arrival).max(Time::ZERO);
        s.total_latency += latency;
        s.max_latency = s.max_latency.max(latency);
        s.makespan = s.makespan.max(self.now);
    }

    /// The accumulated [`StreamSummary`] so far.
    pub fn summary(&self) -> StreamSummary {
        self.summary
    }
}

/// Pulls cycles from an [`ArrivalSource`] onto an [`Engine`].
///
/// The runner owns only its [`StreamConfig`]; manager state lives in the
/// engine and arrival state in the source, so one runner value can drive
/// many streams.
///
/// # Examples
///
/// A live stream with a 2-frame backlog that skips to the latest frame
/// under overload:
///
/// ```
/// use sqm_core::controller::{ConstantExec, OverheadModel};
/// use sqm_core::engine::{Engine, NullSink};
/// use sqm_core::manager::NumericManager;
/// use sqm_core::policy::MixedPolicy;
/// use sqm_core::source::Periodic;
/// use sqm_core::stream::{OverloadPolicy, StreamConfig, StreamingRunner};
/// use sqm_core::system::SystemBuilder;
/// use sqm_core::time::Time;
///
/// let sys = SystemBuilder::new(2)
///     .action("decode", &[100, 200], &[60, 120])
///     .action("render", &[100, 200], &[60, 120])
///     .deadline_last(Time::from_ns(500))
///     .build()
///     .unwrap();
/// let policy = MixedPolicy::new(&sys);
/// let mut engine = Engine::new(&sys, NumericManager::new(&sys, &policy), OverheadModel::ZERO);
///
/// let runner = StreamingRunner::new(StreamConfig::live(2, OverloadPolicy::SkipToLatest));
/// let out = runner.run(
///     &mut engine,
///     &mut Periodic::new(Time::from_ns(500), 10),
///     &mut ConstantExec::average(sys.table()),
///     &mut NullSink,
/// );
///
/// assert_eq!(out.stats.arrived, 10);
/// assert_eq!(out.stats.processed + out.stats.dropped, 10);
/// assert_eq!(out.run.misses, 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamingRunner {
    config: StreamConfig,
}

impl StreamingRunner {
    /// A runner with the given chaining/backlog/overload configuration.
    pub fn new(config: StreamConfig) -> StreamingRunner {
        StreamingRunner { config }
    }

    /// The runner's configuration.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Drain `source`, executing every admitted frame on `engine` in
    /// arrival order. Per-action records stream into `sink` (dropped
    /// frames produce no records; their cycle indices are skipped).
    pub fn run<M, A, X, S>(
        &self,
        engine: &mut Engine<'_, M>,
        source: &mut A,
        exec: &mut X,
        sink: &mut S,
    ) -> StreamSummary
    where
        M: QualityManager,
        A: ArrivalSource,
        X: ExecutionTimeSource,
        S: TraceSink,
    {
        let StreamConfig {
            chaining,
            capacity,
            policy,
        } = self.config;
        let capacity = capacity.max(1);
        let live = chaining == CycleChaining::ArrivalClamped;

        let mut cursor = StreamCursor::new();
        // Waiting frames as (index, arrival); the frame in service has
        // already been popped. Reused across the whole run.
        let mut queue: VecDeque<(usize, Time)> = VecDeque::new();
        let mut next_index = 0usize;
        let mut last_arrival = Time::ZERO;

        // Pull one arrival, enforcing the non-decreasing contract.
        let pull = |src: &mut A, idx: &mut usize, floor: &mut Time| -> Option<(usize, Time)> {
            let t = src.next_arrival()?.max(*floor);
            *floor = t;
            let i = *idx;
            *idx += 1;
            Some((i, t))
        };

        let mut pending = pull(source, &mut next_index, &mut last_arrival);
        if pending.is_some() {
            cursor.note_arrival();
        }

        loop {
            // Next frame: the backlog's front, else the next arrival (the
            // engine idles until it — or prefetches it, work-conserving).
            let (frame, arrival) = match queue.pop_front() {
                Some(f) => f,
                None => match pending.take() {
                    Some(f) => {
                        pending = pull(source, &mut next_index, &mut last_arrival);
                        if pending.is_some() {
                            cursor.note_arrival();
                        }
                        f
                    }
                    None => break,
                },
            };

            let start_abs = cursor.start_for(chaining, arrival);
            let summary = engine.run_cycle(frame, start_abs - arrival, exec, sink);
            cursor.absorb(arrival, start_abs, &summary);

            // Admit everything that arrived while this frame executed.
            // Pops only happen between frames, so the queue state seen
            // here is exactly the state at each arrival instant.
            while let Some((i, a)) = pending {
                if a > cursor.now() {
                    break;
                }
                pending = pull(source, &mut next_index, &mut last_arrival);
                if pending.is_some() {
                    cursor.note_arrival();
                }
                if live && queue.len() == capacity {
                    match policy {
                        OverloadPolicy::Block => queue.push_back((i, a)),
                        OverloadPolicy::DropNewest => cursor.note_drop(),
                        OverloadPolicy::SkipToLatest => {
                            cursor.note_drops(queue.len());
                            queue.clear();
                            queue.push_back((i, a));
                        }
                    }
                } else {
                    queue.push_back((i, a));
                }
                cursor.note_backlog(queue.len());
            }
        }
        cursor.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ConstantExec, FnExec, OverheadModel};
    use crate::engine::NullSink;
    use crate::manager::NumericManager;
    use crate::policy::MixedPolicy;
    use crate::source::{Bursty, FnSource, Jittered, Periodic, TraceReplay};
    use crate::system::{ParameterizedSystem, SystemBuilder};
    use crate::trace::Trace;

    const PERIOD: Time = Time::from_ns(130);

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(3)
            .action("a", &[10, 25, 40], &[4, 9, 14])
            .action("b", &[12, 22, 35], &[6, 11, 17])
            .action("c", &[8, 18, 28], &[3, 8, 12])
            .action("d", &[15, 24, 33], &[7, 12, 16])
            .deadline_last(PERIOD)
            .build()
            .unwrap()
    }

    fn engine<'a>(
        s: &'a ParameterizedSystem,
        p: &'a MixedPolicy<'a>,
    ) -> Engine<'a, NumericManager<'a, MixedPolicy<'a>>> {
        Engine::new(
            s,
            NumericManager::new(s, p),
            OverheadModel::new(Time::from_ns(2), Time::from_ns(1)),
        )
    }

    /// Periodic + Block ≡ Engine::run_cycles, byte for byte, under both
    /// chaining variants — the closed loop is a special case.
    #[test]
    fn periodic_block_is_byte_identical_to_closed_loop() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        for chaining in [CycleChaining::WorkConserving, CycleChaining::ArrivalClamped] {
            let mut closed_trace = Trace::default();
            let closed = engine(&s, &p).run_cycles(
                7,
                PERIOD,
                chaining,
                &mut ConstantExec::average(s.table()),
                &mut closed_trace,
            );

            let runner = StreamingRunner::new(StreamConfig {
                chaining,
                capacity: 2,
                policy: OverloadPolicy::Block,
            });
            let mut stream_trace = Trace::default();
            let out = runner.run(
                &mut engine(&s, &p),
                &mut Periodic::new(PERIOD, 7),
                &mut ConstantExec::average(s.table()),
                &mut stream_trace,
            );

            assert_eq!(out.run, closed, "{chaining:?}");
            assert_eq!(closed_trace.cycles.len(), stream_trace.cycles.len());
            for (a, b) in closed_trace.cycles.iter().zip(&stream_trace.cycles) {
                assert_eq!(a.cycle, b.cycle);
                assert_eq!(a.start, b.start);
                assert_eq!(a.records, b.records);
            }
            assert_eq!(out.stats.arrived, 7);
            assert_eq!(out.stats.processed, 7);
            assert_eq!(out.stats.dropped, 0);
        }
    }

    /// Slow frames + fast arrivals: DropNewest shes load, keeps order.
    #[test]
    fn drop_newest_sheds_and_preserves_order() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        // Arrivals every 30 ns; each frame takes ~44 ns (averages) — the
        // queue fills, and with capacity 1 the policy has to act.
        let runner = StreamingRunner::new(StreamConfig::live(1, OverloadPolicy::DropNewest));
        let mut trace = Trace::default();
        let out = runner.run(
            &mut engine(&s, &p),
            &mut Periodic::new(Time::from_ns(30), 20),
            &mut ConstantExec::average(s.table()),
            &mut trace,
        );
        assert_eq!(out.stats.arrived, 20);
        assert!(out.stats.dropped > 0, "overload must shed frames");
        assert_eq!(out.stats.processed + out.stats.dropped, 20);
        assert_eq!(out.stats.processed, out.run.cycles);
        assert_eq!(out.stats.max_backlog, 1, "capacity bound respected");
        let indices: Vec<usize> = trace.cycles.iter().map(|c| c.cycle).collect();
        assert!(indices.windows(2).all(|w| w[0] < w[1]), "in arrival order");
        // Tail drop keeps the oldest frames: frame 0 and 1 both run.
        assert_eq!(&indices[..2], &[0, 1]);
    }

    /// SkipToLatest prefers fresh frames: the last frame always runs.
    #[test]
    fn skip_to_latest_prefers_fresh_frames() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let runner = StreamingRunner::new(StreamConfig::live(1, OverloadPolicy::SkipToLatest));
        let mut trace = Trace::default();
        let out = runner.run(
            &mut engine(&s, &p),
            &mut Periodic::new(Time::from_ns(30), 20),
            &mut ConstantExec::average(s.table()),
            &mut trace,
        );
        assert!(out.stats.dropped > 0);
        assert_eq!(out.stats.processed + out.stats.dropped, 20);
        let indices: Vec<usize> = trace.cycles.iter().map(|c| c.cycle).collect();
        assert_eq!(*indices.last().unwrap(), 19, "freshest frame survives");
        // Skipping sheds *older* queued frames, so waits stay bounded by
        // roughly one service time; compare against DropNewest.
        let tail_drop = StreamingRunner::new(StreamConfig::live(1, OverloadPolicy::DropNewest))
            .run(
                &mut engine(&s, &p),
                &mut Periodic::new(Time::from_ns(30), 20),
                &mut ConstantExec::average(s.table()),
                &mut NullSink,
            );
        assert!(
            out.stats.max_wait <= tail_drop.stats.max_wait,
            "skip-to-latest never waits longer than tail drop ({} vs {})",
            out.stats.max_wait,
            tail_drop.stats.max_wait,
        );
    }

    /// A burst deeper than capacity exercises the backlog bound; Block
    /// admits past it and processes everything.
    #[test]
    fn block_is_lossless_under_bursts() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let out = StreamingRunner::new(StreamConfig::live(2, OverloadPolicy::Block)).run(
            &mut engine(&s, &p),
            &mut Bursty::new(PERIOD, 6, 48, 11),
            &mut ConstantExec::average(s.table()),
            &mut NullSink,
        );
        assert_eq!(out.stats.arrived, 48);
        assert_eq!(out.stats.processed, 48);
        assert_eq!(out.stats.dropped, 0);
        assert!(out.stats.max_backlog >= 2, "bursts actually queue");
        assert!(out.stats.total_wait > Time::ZERO);
        assert!(out.stats.max_latency >= out.stats.max_wait);
    }

    /// Jittered arrivals with ample headroom: nothing drops, waits are
    /// bounded by the jitter the arrivals inject.
    #[test]
    fn jittered_arrivals_meet_deadlines_with_headroom() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let out = StreamingRunner::new(StreamConfig::live(4, OverloadPolicy::DropNewest)).run(
            &mut engine(&s, &p),
            &mut Jittered::new(PERIOD, Time::from_ns(40), 32, 5),
            &mut ConstantExec::average(s.table()),
            &mut NullSink,
        );
        assert_eq!(out.stats.processed, 32);
        assert_eq!(out.stats.dropped, 0);
        assert_eq!(out.run.misses, 0, "deadlines anchor at arrival");
        assert_eq!(out.stats.makespan, out.stats.makespan.max(Time::ZERO));
    }

    /// TraceReplay drives the runner with recorded timestamps; the engine
    /// idles across gaps and catches up after clumps.
    #[test]
    fn trace_replay_idles_and_catches_up() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let times = vec![
            Time::ZERO,
            Time::from_ns(10),
            Time::from_ns(20),
            Time::from_ns(1_000),
        ];
        let mut trace = Trace::default();
        let out = StreamingRunner::new(StreamConfig::live(8, OverloadPolicy::Block)).run(
            &mut engine(&s, &p),
            &mut TraceReplay::new(times),
            &mut ConstantExec::average(s.table()),
            &mut trace,
        );
        assert_eq!(out.stats.processed, 4);
        // The last frame starts exactly at its arrival (the engine idled).
        assert_eq!(trace.cycles[3].start, Time::ZERO);
        assert_eq!(
            out.stats.makespan,
            Time::from_ns(1_000) + trace.cycles[3].stats().end
        );
        // The clump made frames 1 and 2 wait.
        assert!(out.stats.total_wait > Time::ZERO);
    }

    /// The runner clamps a misbehaving (non-monotone) source.
    #[test]
    fn non_monotone_sources_are_clamped() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let mut v = vec![Time::from_ns(500), Time::from_ns(100)].into_iter();
        let out = StreamingRunner::new(StreamConfig::live(4, OverloadPolicy::Block)).run(
            &mut engine(&s, &p),
            &mut FnSource::new(move || v.next()),
            &mut ConstantExec::average(s.table()),
            &mut NullSink,
        );
        assert_eq!(out.stats.processed, 2);
        // Frame 1's arrival is clamped up to 500, so it waits only for
        // frame 0's completion (one service time), never the 400 ns its
        // raw timestamp would imply.
        assert!(out.stats.max_wait < Time::from_ns(400));
    }

    /// Work-conserving streaming prefetches: starts chain back-to-back
    /// regardless of arrival gaps, and nothing is ever dropped.
    #[test]
    fn work_conserving_prefetches_and_never_drops() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let runner = StreamingRunner::new(StreamConfig {
            chaining: CycleChaining::WorkConserving,
            capacity: 1,
            policy: OverloadPolicy::SkipToLatest,
        });
        let out = runner.run(
            &mut engine(&s, &p),
            &mut Periodic::new(Time::from_ns(10_000), 6),
            &mut ConstantExec::average(s.table()),
            &mut NullSink,
        );
        assert_eq!(out.stats.processed, 6, "policy is inert off-line");
        assert_eq!(out.stats.dropped, 0);
        assert_eq!(out.stats.total_wait, Time::ZERO, "prefetch never waits");
    }

    /// Work-conserving prefetch ahead of a late first arrival makes
    /// *every* cycle end negative; `last_end` must report the true
    /// maximum, not the empty-run default of zero.
    #[test]
    fn all_negative_ends_keep_a_negative_last_end() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let mut trace = Trace::default();
        // Both frames stamped at 1000 ns, but the engine prefetches from
        // absolute time 0: relative starts are -1000 and below, and with
        // ~50 ns of work per frame every relative end stays negative.
        let out = StreamingRunner::new(StreamConfig::closed_loop()).run(
            &mut engine(&s, &p),
            &mut TraceReplay::new(vec![Time::from_ns(1_000); 2]),
            &mut ConstantExec::average(s.table()),
            &mut trace,
        );
        let ends: Vec<Time> = trace.cycles.iter().map(|c| c.stats().end).collect();
        assert!(ends.iter().all(|e| *e < Time::ZERO), "scenario: {ends:?}");
        let max_end = ends.iter().copied().fold(Time::NEG_INF, Time::max);
        assert_eq!(out.run.last_end, max_end, "no zero floor");
        assert!(out.run.last_end < Time::ZERO);
        // All three reduction paths still agree byte-for-byte.
        assert_eq!(trace.run_summary(), out.run);
        let mut merged = RunSummary::default();
        merged.merge(&out.run);
        assert_eq!(merged.last_end, out.run.last_end);
    }

    /// Summaries merge like the fleet layer merges runs.
    #[test]
    fn stream_stats_merge_adds_counters_and_maxes_extrema() {
        let a = StreamStats {
            arrived: 10,
            processed: 8,
            dropped: 2,
            max_backlog: 3,
            total_wait: Time::from_ns(100),
            max_wait: Time::from_ns(40),
            total_latency: Time::from_ns(400),
            max_latency: Time::from_ns(90),
            makespan: Time::from_ns(1_000),
        };
        let b = StreamStats {
            arrived: 5,
            processed: 5,
            dropped: 0,
            max_backlog: 1,
            total_wait: Time::from_ns(10),
            max_wait: Time::from_ns(10),
            total_latency: Time::from_ns(50),
            max_latency: Time::from_ns(120),
            makespan: Time::from_ns(700),
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.arrived, 15);
        assert_eq!(m.processed, 13);
        assert_eq!(m.dropped, 2);
        assert_eq!(m.max_backlog, 3);
        assert_eq!(m.total_wait, Time::from_ns(110));
        assert_eq!(m.max_wait, Time::from_ns(40));
        assert_eq!(m.max_latency, Time::from_ns(120));
        assert_eq!(m.makespan, Time::from_ns(1_000));
        assert!((a.drop_rate() - 0.2).abs() < 1e-12);
        assert!((a.avg_wait_ns() - 12.5).abs() < 1e-12);
        assert!((a.avg_latency_ns() - 50.0).abs() < 1e-12);
    }

    /// An empty source is a no-op.
    #[test]
    fn empty_source_yields_default_summary() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let out = StreamingRunner::new(StreamConfig::default()).run(
            &mut engine(&s, &p),
            &mut Periodic::new(PERIOD, 0),
            &mut ConstantExec::average(s.table()),
            &mut NullSink,
        );
        assert_eq!(out, StreamSummary::default());
    }

    /// Dropped frames consume exec-source cycle indices via the engine's
    /// `cycle` argument: the executed frames' indices match their arrival
    /// indices, keeping content-driven exec sources aligned.
    #[test]
    fn dropped_frames_keep_exec_indices_aligned() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let seen = std::cell::RefCell::new(Vec::new());
        let mut exec = FnExec(|cycle: usize, action: usize, _q| {
            if action == 0 {
                seen.borrow_mut().push(cycle);
            }
            Time::from_ns(40)
        });
        let mut trace = Trace::default();
        let out = StreamingRunner::new(StreamConfig::live(1, OverloadPolicy::DropNewest)).run(
            &mut engine(&s, &p),
            &mut Periodic::new(Time::from_ns(50), 12),
            &mut exec,
            &mut trace,
        );
        assert!(out.stats.dropped > 0);
        let executed: Vec<usize> = trace.cycles.iter().map(|c| c.cycle).collect();
        assert_eq!(*seen.borrow(), executed);
    }
}
