//! Offline analysis of parameterized systems.
//!
//! The compiler side of the paper's tool chain (Fig. 1) needs more than the
//! region tables: a designer choosing deadlines, quality counts, or step
//! menus wants to know *before deployment* what the Quality Manager will do
//! in expectation. This module answers those design-time questions from the
//! same integer machinery the policies use:
//!
//! * [`min_feasible_deadline`] — the tightest final deadline the system can
//!   accept at all (worst case at `qmin`);
//! * [`quality_envelope`] — the per-state quality profile of the *nominal*
//!   run (every action at its average time): the level the manager will sit
//!   at when reality matches the profile;
//! * [`sustainable_quality`] — the highest level whose whole-cycle average
//!   demand fits the final deadline;
//! * [`deadline_sweep`] — nominal average quality as a function of the
//!   cycle deadline, the curve a designer trades budget against quality on.

use crate::policy::{choose_quality, MixedPolicy};
use crate::quality::Quality;
use crate::system::ParameterizedSystem;
use crate::time::Time;

/// The tightest final deadline for which the system is feasible at all:
/// the total worst case at minimal quality, honouring any intermediate
/// deadlines' own requirements.
///
/// Returns `None` if an *intermediate* deadline is already the binding
/// constraint (no final deadline can fix an infeasible prefix).
pub fn min_feasible_deadline(sys: &ParameterizedSystem) -> Option<Time> {
    let n = sys.n_actions();
    let wcmin_total = sys.prefix().wc_total(Quality::MIN);
    // Intermediate deadlines must each cover their prefix worst case.
    for (k, d) in sys.deadlines().iter() {
        if k < n - 1 && d < sys.prefix().wc_range(0, k + 1, Quality::MIN) {
            return None;
        }
    }
    Some(wcmin_total)
}

/// The nominal (average-time) trajectory: for each state, the quality the
/// mixed-policy manager chooses and the elapsed time at which it decides.
/// This is the design-time prediction of Fig. 7's per-frame levels.
pub fn quality_envelope(sys: &ParameterizedSystem) -> Vec<(Time, Quality)> {
    let policy = MixedPolicy::new(sys);
    let nq = sys.qualities().len();
    let mut out = Vec::with_capacity(sys.n_actions());
    let mut t = Time::ZERO;
    for state in 0..sys.n_actions() {
        let q = choose_quality(&policy, nq, state, t).unwrap_or(Quality::MIN);
        out.push((t, q));
        t += sys.table().av(state, q);
    }
    out
}

/// Mean level of the nominal trajectory.
pub fn nominal_average_quality(sys: &ParameterizedSystem) -> f64 {
    let env = quality_envelope(sys);
    if env.is_empty() {
        return 0.0;
    }
    env.iter().map(|(_, q)| q.index() as f64).sum::<f64>() / env.len() as f64
}

/// The highest constant quality whose total *average* demand fits the final
/// deadline — the level the system can cruise at in expectation. `None` if
/// even `qmin`'s average does not fit (the manager will then live off the
/// worst-case/average gap alone).
pub fn sustainable_quality(sys: &ParameterizedSystem) -> Option<Quality> {
    let d = sys.final_deadline();
    sys.qualities()
        .iter_desc()
        .find(|&q| sys.prefix().av_total(q) <= d)
}

/// Re-deadline the system (single global deadline) and report the nominal
/// average quality for each candidate — the budget/quality trade-off curve.
/// Candidates below the minimal feasible deadline yield `None`.
pub fn deadline_sweep(sys: &ParameterizedSystem, candidates: &[Time]) -> Vec<(Time, Option<f64>)> {
    candidates
        .iter()
        .map(|&d| {
            let rebuilt = with_final_deadline(sys, d);
            (d, rebuilt.map(|s| nominal_average_quality(&s)))
        })
        .collect()
}

/// Clone a system with a different single global deadline.
pub fn with_final_deadline(
    sys: &ParameterizedSystem,
    deadline: Time,
) -> Option<ParameterizedSystem> {
    let n = sys.n_actions();
    let deadlines = crate::action::DeadlineMap::single_global(n, deadline);
    ParameterizedSystem::new(sys.actions().to_vec(), sys.table().clone(), deadlines).ok()
}

/// How much of the final deadline the nominal run consumes (utilization of
/// the time budget — the paper's optimality metric, predicted offline).
pub fn nominal_utilization(sys: &ParameterizedSystem) -> f64 {
    let env = quality_envelope(sys);
    let end = match env.last() {
        None => return 0.0,
        Some(&(t, q)) => t + sys.table().av(sys.n_actions() - 1, q),
    };
    end.as_ns() as f64 / sys.final_deadline().as_ns().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemBuilder;

    fn sys(deadline: i64) -> ParameterizedSystem {
        let mut b = SystemBuilder::new(4);
        for i in 0..12 {
            b = b.action(&format!("a{i}"), &[100, 150, 200, 250], &[40, 60, 80, 100]);
        }
        b.deadline_last(Time::from_ns(deadline)).build().unwrap()
    }

    #[test]
    fn min_feasible_deadline_is_wcmin_total() {
        let s = sys(3_000);
        assert_eq!(min_feasible_deadline(&s), Some(Time::from_ns(1_200)));
        // And it is sharp: rebuilding with exactly that deadline works,
        // one less fails.
        assert!(with_final_deadline(&s, Time::from_ns(1_200)).is_some());
        assert!(with_final_deadline(&s, Time::from_ns(1_199)).is_none());
    }

    #[test]
    fn infeasible_intermediate_deadline_detected() {
        let s = SystemBuilder::new(1)
            .action("a", &[100], &[50])
            .action("b", &[100], &[50])
            .deadline(0, Time::from_ns(150))
            .deadline_last(Time::from_ns(1_000))
            .build()
            .unwrap();
        assert_eq!(min_feasible_deadline(&s), Some(Time::from_ns(200)));
        let tight = SystemBuilder::new(1)
            .action("a", &[100], &[50])
            .action("b", &[100], &[50])
            .deadline(0, Time::from_ns(100))
            .deadline_last(Time::from_ns(1_000))
            .build()
            .unwrap();
        // Feasible (prefix wc = 100 ≤ 100), and the bound reflects only the
        // final total.
        assert_eq!(min_feasible_deadline(&tight), Some(Time::from_ns(200)));
    }

    #[test]
    fn sustainable_quality_matches_average_totals() {
        // Tighter worst cases so mid-range deadlines are feasible.
        // Average totals: q0 480, q1 720, q2 960, q3 1200; wcmin total 600.
        let lean = |deadline: i64| {
            let mut b = SystemBuilder::new(4);
            for i in 0..12 {
                b = b.action(&format!("a{i}"), &[50, 75, 100, 125], &[40, 60, 80, 100]);
            }
            b.deadline_last(Time::from_ns(deadline)).build().unwrap()
        };
        assert_eq!(sustainable_quality(&lean(1_000)), Some(Quality::new(2)));
        assert_eq!(sustainable_quality(&lean(1_250)), Some(Quality::new(3)));
        assert_eq!(sustainable_quality(&lean(1_200)), Some(Quality::new(3)));
        assert_eq!(sustainable_quality(&lean(700)), Some(Quality::new(0)));
        // A validated system always sustains qmin: feasibility demands
        // D ≥ Σ Cwc(·, qmin) ≥ Σ Cav(·, qmin).
        assert_eq!(sustainable_quality(&lean(610)), Some(Quality::new(0)));
    }

    #[test]
    fn envelope_tracks_budget() {
        let generous = nominal_average_quality(&sys(2_400));
        let tight = nominal_average_quality(&sys(1_250));
        assert!(generous >= tight);
        assert!(
            generous > 2.5,
            "generous budget should cruise near qmax: {generous}"
        );
        // The envelope's decision times are non-decreasing.
        let env = quality_envelope(&sys(1_500));
        for w in env.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn deadline_sweep_is_monotone_and_flags_infeasible() {
        let s = sys(2_000);
        let candidates: Vec<Time> = [800i64, 1_199, 1_200, 1_400, 1_800, 2_400]
            .map(Time::from_ns)
            .to_vec();
        let sweep = deadline_sweep(&s, &candidates);
        assert_eq!(sweep[0].1, None, "below min feasible");
        assert_eq!(sweep[1].1, None, "just below min feasible");
        let values: Vec<f64> = sweep[2..].iter().map(|(_, v)| v.unwrap()).collect();
        for w in values.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "quality non-decreasing in budget: {values:?}"
            );
        }
    }

    #[test]
    fn nominal_utilization_is_high_but_bounded() {
        for d in [1_300i64, 1_600, 2_000, 3_000] {
            let u = nominal_utilization(&sys(d));
            assert!(u <= 1.0 + 1e-9, "never past the deadline nominally: {u}");
            assert!(
                u > 0.3,
                "the manager should use a real share of the budget: {u}"
            );
        }
    }

    #[test]
    fn envelope_matches_actual_average_run() {
        use crate::controller::{ConstantExec, CycleRunner, OverheadModel};
        use crate::manager::NumericManager;
        let s = sys(1_500);
        let p = MixedPolicy::new(&s);
        let trace = CycleRunner::new(&s, NumericManager::new(&s, &p), OverheadModel::ZERO)
            .run_cycle(0, Time::ZERO, &mut ConstantExec::average(s.table()));
        let predicted: Vec<usize> = quality_envelope(&s)
            .iter()
            .map(|(_, q)| q.index())
            .collect();
        assert_eq!(
            predicted,
            trace.quality_sequence(),
            "prediction = execution"
        );
    }
}
