//! Actions and deadlines.
//!
//! The application software is *already scheduled*: a finite sequence of
//! atomic actions `a_1 … a_n` (blocks of C code in the paper; closures or
//! simulated workloads here). A deadline function `D` assigns absolute
//! completion deadlines to a subset of the actions — in the MPEG evaluation a
//! single global deadline on the last action of each cycle.

use crate::time::Time;
use std::fmt;

/// Index of an action in the scheduled sequence (0-based).
pub type ActionId = usize;

/// Static description of one scheduled action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActionInfo {
    /// Human-readable name (e.g. `"mb17.dct"`), used in traces and reports.
    pub name: String,
    /// Free-form classification used by workload generators (e.g. which
    /// pipeline stage this action belongs to). Not interpreted by the QM.
    pub kind: u32,
}

impl ActionInfo {
    /// A named action of the default kind.
    pub fn named(name: impl Into<String>) -> ActionInfo {
        ActionInfo {
            name: name.into(),
            kind: 0,
        }
    }

    /// A named action with a workload-specific kind tag.
    pub fn with_kind(name: impl Into<String>, kind: u32) -> ActionInfo {
        ActionInfo {
            name: name.into(),
            kind,
        }
    }
}

impl fmt::Display for ActionInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The deadline function `D : A ⇀ Time` (partial; not every action carries a
/// deadline). Deadlines are relative to the start of the cycle.
///
/// ```
/// use sqm_core::action::DeadlineMap;
/// use sqm_core::time::Time;
/// let mut d = DeadlineMap::new(5);
/// d.set(4, Time::from_ms(30));
/// assert_eq!(d.get(4), Some(Time::from_ms(30)));
/// assert_eq!(d.get(0), None);
/// assert_eq!(d.last_constrained(), Some(4));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlineMap {
    deadlines: Vec<Option<Time>>,
}

impl DeadlineMap {
    /// An empty deadline map over `n` actions.
    pub fn new(n: usize) -> DeadlineMap {
        DeadlineMap {
            deadlines: vec![None; n],
        }
    }

    /// A map with a single deadline on the last action — the configuration
    /// of the paper's MPEG experiment (one global deadline per cycle).
    pub fn single_global(n: usize, deadline: Time) -> DeadlineMap {
        let mut m = DeadlineMap::new(n);
        if n > 0 {
            m.set(n - 1, deadline);
        }
        m
    }

    /// Number of actions covered by the map.
    #[inline]
    pub fn len(&self) -> usize {
        self.deadlines.len()
    }

    /// `true` when the map covers zero actions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.deadlines.is_empty()
    }

    /// Assign (or overwrite) the deadline of action `k`.
    ///
    /// # Panics
    /// If `k` is out of range.
    pub fn set(&mut self, k: ActionId, deadline: Time) {
        self.deadlines[k] = Some(deadline);
    }

    /// Remove the deadline of action `k`, if any.
    pub fn clear(&mut self, k: ActionId) {
        self.deadlines[k] = None;
    }

    /// The deadline of action `k`, if constrained.
    #[inline]
    pub fn get(&self, k: ActionId) -> Option<Time> {
        self.deadlines.get(k).copied().flatten()
    }

    /// The raw per-action deadline slots, indexed by action id — lets hot
    /// loops hoist one slice instead of calling [`DeadlineMap::get`] per
    /// step.
    #[inline]
    pub fn as_slice(&self) -> &[Option<Time>] {
        &self.deadlines
    }

    /// Iterate over `(action, deadline)` pairs in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = (ActionId, Time)> + '_ {
        self.deadlines
            .iter()
            .enumerate()
            .filter_map(|(k, d)| d.map(|t| (k, t)))
    }

    /// Number of constrained actions.
    pub fn constrained_count(&self) -> usize {
        self.deadlines.iter().filter(|d| d.is_some()).count()
    }

    /// The last constrained action, if any. The quality-management policy is
    /// only well-defined when every state still has a deadline ahead of it,
    /// i.e. when this returns `Some(n-1)`.
    pub fn last_constrained(&self) -> Option<ActionId> {
        self.deadlines.iter().rposition(|d| d.is_some())
    }

    /// `true` when deadlines are non-decreasing in sequence order (a later
    /// action never has to finish before an earlier one).
    pub fn is_monotone(&self) -> bool {
        let mut prev = Time::NEG_INF;
        for (_, d) in self.iter() {
            if d < prev {
                return false;
            }
            prev = d;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_global_sets_only_last() {
        let d = DeadlineMap::single_global(4, Time::from_ms(10));
        assert_eq!(d.get(3), Some(Time::from_ms(10)));
        assert_eq!(d.get(0), None);
        assert_eq!(d.constrained_count(), 1);
        assert_eq!(d.last_constrained(), Some(3));
    }

    #[test]
    fn empty_map() {
        let d = DeadlineMap::new(0);
        assert!(d.is_empty());
        assert_eq!(d.last_constrained(), None);
        let d = DeadlineMap::single_global(0, Time::from_ms(1));
        assert!(d.is_empty());
    }

    #[test]
    fn set_clear_get() {
        let mut d = DeadlineMap::new(3);
        d.set(1, Time::from_us(5));
        assert_eq!(d.get(1), Some(Time::from_us(5)));
        d.clear(1);
        assert_eq!(d.get(1), None);
        assert_eq!(d.get(99), None, "out-of-range get is None, not a panic");
    }

    #[test]
    fn iter_in_order() {
        let mut d = DeadlineMap::new(5);
        d.set(4, Time::from_ms(4));
        d.set(1, Time::from_ms(1));
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(1, Time::from_ms(1)), (4, Time::from_ms(4))]);
    }

    #[test]
    fn monotonicity_check() {
        let mut d = DeadlineMap::new(3);
        d.set(0, Time::from_ms(2));
        d.set(2, Time::from_ms(1));
        assert!(!d.is_monotone());
        d.set(2, Time::from_ms(2));
        assert!(d.is_monotone());
        assert!(DeadlineMap::new(4).is_monotone(), "vacuously monotone");
    }

    #[test]
    fn action_info_constructors() {
        let a = ActionInfo::named("dct");
        assert_eq!(a.name, "dct");
        assert_eq!(a.kind, 0);
        let b = ActionInfo::with_kind("me", 2);
        assert_eq!(b.kind, 2);
        assert_eq!(b.to_string(), "me");
    }
}
