//! Elastic fleet scheduling — 10⁵–10⁶ *live* streams multiplexed onto few
//! workers, interleaved **by arrival time** instead of sharded whole.
//!
//! [`crate::fleet::FleetRunner`] scales out by giving each worker entire
//! streams; that is the right unit when streams are closed loops, but a
//! live deployment has many mostly-idle streams whose cycles *interleave*
//! in time. This module schedules at cycle granularity:
//!
//! * a **sharded binary event heap** ([`ShardedEventHeap`], one lane per
//!   worker) keyed by each stream's next virtual arrival time — obtained
//!   without consumption via [`ArrivalSource::peek`];
//! * a **start-event heap** ([`EventHeap`]) keyed by the absolute start
//!   time of each stream's next runnable cycle;
//! * a fixed-capacity **ready ring**: each scheduling round drains due
//!   events into at most [`ElasticConfig::ring_capacity`] ready cycles;
//! * **per-worker run queues with deterministic stealing**: the ring is
//!   split into one contiguous segment per worker, each with its own
//!   cacheline-padded claim cursor; a worker that drains its segment
//!   steals from victims chosen by `(worker + step + round) % workers` —
//!   a function of worker index and round counter, never host timing;
//! * **fleet-wide admission control** ([`Admission::DropNewest`]): a
//!   shared [`ShedLedger`] counts the *aggregate* backlog, and a frame is
//!   shed iff its stream is already behind **and** the fleet as a whole
//!   is over capacity — load shedding as a global decision, not a
//!   per-stream one.
//!
//! ## The determinism contract
//!
//! Results are **byte-identical for every worker count**. The design
//! splits the problem in two:
//!
//! 1. *Virtual-time scheduling* — which frames are admitted or shed, and
//!    when each admitted cycle starts — is computed by a serial,
//!    deterministic discrete-event loop over the heaps. Nothing in it
//!    reads the worker count: the sharded heap pops the global minimum
//!    across lanes (keys are unique per stream, so lane count cannot
//!    change pop order), and the ring capacity is configuration, not
//!    `workers`.
//! 2. *Host execution* — which worker runs which ready cycle — only maps
//!    already-scheduled work onto threads. Streams are independent and a
//!    stream has at most one cycle per round, so assignment (and
//!    stealing) changes wall-clock time, never results.
//!
//! Per-stream results under [`Admission::Unbounded`] are identical to
//! running each stream through [`crate::stream::StreamingRunner`] with
//! [`OverloadPolicy::Block`] — the per-stream recurrence (`start =
//! max(now, arrival)` live, `start = now` work-conserving; `now = arrival
//! + end`) is the same code, [`StreamCursor`]. That identity covers the
//! *full* struct, [`StreamStats::max_backlog`] included: the scheduler
//! admits arrivals whenever the event loop reaches them (which may be
//! rounds earlier than the per-stream runner would have), so instead of
//! sampling its own queue depths it keeps a per-stream shadow account
//! that replays each admitted arrival against the stream's completion
//! times at *admission granularity* — the depth the per-stream runner
//! observes is `j − #{completions < arrival_j}` for the stream's `j`-th
//! admitted arrival, a pure function of the arrival and completion
//! sequences, not of ring capacity, round boundaries or worker count.
//! `tests/conformance.rs` pins the identity field-for-field.
//!
//! ## Admission semantics
//!
//! Admission is **round-granular**: a frame is judged when the event loop
//! reaches its arrival, against the backlog accumulated so far. A frame
//! counts toward the global backlog iff, at admission, its stream is
//! already behind (a cycle in flight or frames queued); a frame that
//! finds its stream idle starts promptly and is never counted or shed.
//! Shed frames still consume their stream's cycle index, keeping
//! content-driven execution-time sources aligned (same rule as
//! [`crate::stream`]).
//!
//! [`OverloadPolicy::Block`]: crate::stream::OverloadPolicy::Block
//! [`StreamStats::max_backlog`]: crate::stream::StreamStats::max_backlog

use crate::controller::ExecutionTimeSource;
use crate::engine::{CycleChaining, CycleSummary, Engine, RunSummary, TraceSink};
use crate::fleet::CachePadded;
use crate::manager::QualityManager;
use crate::source::ArrivalSource;
use crate::stream::{StreamCursor, StreamStats, StreamSummary};
use crate::time::Time;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

/// A hand-rolled binary min-heap of `(time, stream)` events.
///
/// Keys are totally ordered (ties broken by stream id), `push`/`pop` are
/// `O(log n)` with no allocation beyond the backing `Vec` — the only heap
/// operations the scheduler's hot loop needs, without pulling in
/// `BinaryHeap`'s max-order and `Reverse` wrappers.
///
/// # Examples
///
/// ```
/// use sqm_core::elastic::EventHeap;
/// use sqm_core::time::Time;
///
/// let mut heap = EventHeap::new();
/// heap.push(Time::from_ns(30), 2);
/// heap.push(Time::from_ns(10), 7);
/// heap.push(Time::from_ns(10), 3);
/// assert_eq!(heap.pop(), Some((Time::from_ns(10), 3)), "time, then id");
/// assert_eq!(heap.pop(), Some((Time::from_ns(10), 7)));
/// assert_eq!(heap.pop(), Some((Time::from_ns(30), 2)));
/// assert_eq!(heap.pop(), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EventHeap {
    items: Vec<(Time, u32)>,
}

impl EventHeap {
    /// An empty heap.
    pub fn new() -> EventHeap {
        EventHeap::default()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The minimum event without removing it.
    pub fn peek(&self) -> Option<(Time, u32)> {
        self.items.first().copied()
    }

    /// Queue an event.
    pub fn push(&mut self, time: Time, stream: u32) {
        self.items.push((time, stream));
        let mut i = self.items.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[parent] <= self.items[i] {
                break;
            }
            self.items.swap(parent, i);
            i = parent;
        }
    }

    /// Remove and return the minimum event.
    pub fn pop(&mut self) -> Option<(Time, u32)> {
        if self.items.is_empty() {
            return None;
        }
        let min = self.items.swap_remove(0);
        let n = self.items.len();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let child = if r < n && self.items[r] < self.items[l] {
                r
            } else {
                l
            };
            if self.items[i] <= self.items[child] {
                break;
            }
            self.items.swap(i, child);
            i = child;
        }
        Some(min)
    }
}

/// One [`EventHeap`] lane per worker, keyed by stream id (`stream %
/// lanes`), popped globally smallest-first.
///
/// Each stream has at most one pending arrival event, so every key is
/// unique and the pop order across lanes is exactly the sorted order of
/// all queued events — **independent of the lane count**. That is what
/// lets the lane count track the worker count (locality: a worker's
/// streams cluster in its lane) without the worker count ever leaking
/// into scheduling decisions.
#[derive(Clone, Debug)]
pub struct ShardedEventHeap {
    lanes: Vec<EventHeap>,
}

impl ShardedEventHeap {
    /// A heap with `lanes` lanes (clamped to at least 1).
    pub fn new(lanes: usize) -> ShardedEventHeap {
        ShardedEventHeap {
            lanes: vec![EventHeap::new(); lanes.max(1)],
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Total queued events across lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(EventHeap::len).sum()
    }

    /// `true` when every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(EventHeap::is_empty)
    }

    /// Queue an event in its stream's lane.
    pub fn push(&mut self, time: Time, stream: u32) {
        let lane = stream as usize % self.lanes.len();
        self.lanes[lane].push(time, stream);
    }

    /// The globally minimum event across lanes, without removing it.
    pub fn peek_min(&self) -> Option<(Time, u32)> {
        self.lanes.iter().filter_map(EventHeap::peek).min()
    }

    /// Remove and return the globally minimum event.
    pub fn pop_min(&mut self) -> Option<(Time, u32)> {
        let lane = self
            .lanes
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.peek().map(|top| (top, i)))
            .min()?
            .1;
        self.lanes[lane].pop()
    }
}

/// Fleet-wide admission control for arriving frames.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Admission {
    /// Admit every frame (backpressure upstream). Per-stream results are
    /// identical to [`crate::stream::StreamingRunner`] with
    /// [`OverloadPolicy::Block`](crate::stream::OverloadPolicy::Block).
    #[default]
    Unbounded,
    /// Tail-drop against the **aggregate** backlog: an arriving frame
    /// whose stream is already behind is shed iff the fleet-wide count of
    /// behind frames has reached `global_capacity`. Streams that keep up
    /// are never shed, no matter how overloaded the rest of the fleet is.
    DropNewest {
        /// Fleet-wide bound on frames waiting behind a busy stream.
        global_capacity: usize,
    },
}

/// The shared shed ledger: fleet-wide admission counters, maintained by
/// the (serial, deterministic) scheduling loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShedLedger {
    /// Frames delivered by all sources.
    pub arrived: usize,
    /// Frames admitted (executed eventually).
    pub admitted: usize,
    /// Frames shed by [`Admission::DropNewest`].
    pub shed: usize,
    /// High-water mark of the aggregate backlog (frames queued behind
    /// busy streams, fleet-wide).
    pub peak_backlog: usize,
    /// Scheduling rounds executed (ring refills).
    pub rounds: usize,
}

/// How an [`ElasticRunner`] chains, batches and sheds cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElasticConfig {
    /// How cycle starts chain onto arrivals (same semantics as
    /// [`crate::stream::StreamConfig::chaining`]).
    pub chaining: CycleChaining,
    /// Ready-ring capacity: the most cycles one scheduling round hands to
    /// the workers (clamped to at least 1). Fixed configuration — **not**
    /// derived from the worker count, so it never breaks the determinism
    /// contract. Bigger rings amortize round overhead; smaller rings make
    /// admission decisions track execution more closely.
    pub ring_capacity: usize,
    /// Fleet-wide admission control.
    pub admission: Admission,
}

impl ElasticConfig {
    /// Live-capture chaining, a 1024-cycle ring, unbounded admission.
    pub fn live() -> ElasticConfig {
        ElasticConfig {
            chaining: CycleChaining::ArrivalClamped,
            ring_capacity: 1024,
            admission: Admission::Unbounded,
        }
    }

    /// Replace the chaining discipline.
    pub fn with_chaining(mut self, chaining: CycleChaining) -> ElasticConfig {
        self.chaining = chaining;
        self
    }

    /// Replace the ring capacity.
    pub fn with_ring_capacity(mut self, ring_capacity: usize) -> ElasticConfig {
        self.ring_capacity = ring_capacity;
        self
    }

    /// Replace the admission policy.
    pub fn with_admission(mut self, admission: Admission) -> ElasticConfig {
        self.admission = admission;
        self
    }
}

impl Default for ElasticConfig {
    fn default() -> ElasticConfig {
        ElasticConfig::live()
    }
}

/// Executes one cycle of one stream — the seam between the elastic
/// scheduler (which decides *when* cycles run) and the engine (which runs
/// them).
///
/// `start` is the cycle's start **relative to its arrival** (the same
/// convention as [`Engine::run_cycle`]; negative under work-conserving
/// prefetch). Implementations own whatever per-stream state execution
/// needs — engine, execution-time source, sink — so the scheduler stays
/// generic and allocation-free per cycle. [`EngineDriver`] is the
/// standard implementation.
pub trait CycleDriver {
    /// Run cycle `cycle` starting at arrival-relative time `start` and
    /// report what happened.
    fn run_cycle(&mut self, cycle: usize, start: Time) -> CycleSummary;
}

/// The standard [`CycleDriver`]: one monomorphized [`Engine`] plus its
/// execution-time source and trace sink, owned per stream.
pub struct EngineDriver<'sys, M: QualityManager, X, S> {
    engine: Engine<'sys, M>,
    exec: X,
    sink: S,
}

impl<'sys, M: QualityManager, X, S> EngineDriver<'sys, M, X, S> {
    /// A driver running cycles of `engine` against `exec`, streaming
    /// records into `sink`.
    pub fn new(engine: Engine<'sys, M>, exec: X, sink: S) -> EngineDriver<'sys, M, X, S> {
        EngineDriver { engine, exec, sink }
    }

    /// The driver's trace sink (to read back captured traces after a
    /// run — [`ElasticRunner::run`] returns the drivers for exactly
    /// this).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Dismantle the driver into its parts.
    pub fn into_parts(self) -> (Engine<'sys, M>, X, S) {
        (self.engine, self.exec, self.sink)
    }
}

impl<M, X, S> CycleDriver for EngineDriver<'_, M, X, S>
where
    M: QualityManager,
    X: ExecutionTimeSource,
    S: TraceSink,
{
    #[inline]
    fn run_cycle(&mut self, cycle: usize, start: Time) -> CycleSummary {
        self.engine
            .run_cycle(cycle, start, &mut self.exec, &mut self.sink)
    }
}

/// Everything a finished elastic run reports: per-stream
/// [`StreamSummary`]s in submission order, their merged aggregates, and
/// the fleet-wide [`ShedLedger`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ElasticSummary {
    per_stream: Vec<StreamSummary>,
    run: RunSummary,
    stats: StreamStats,
    ledger: ShedLedger,
}

impl ElasticSummary {
    /// Number of streams that ran.
    pub fn n_streams(&self) -> usize {
        self.per_stream.len()
    }

    /// Per-stream summaries, indexed by submission order.
    pub fn per_stream(&self) -> &[StreamSummary] {
        &self.per_stream
    }

    /// One stream's summary.
    pub fn stream(&self, i: usize) -> &StreamSummary {
        &self.per_stream[i]
    }

    /// The merged engine aggregates over all streams.
    pub fn run(&self) -> &RunSummary {
        &self.run
    }

    /// The merged backlog/latency aggregates over all streams.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// The fleet-wide admission ledger.
    pub fn ledger(&self) -> &ShedLedger {
        &self.ledger
    }
}

/// One cycle the scheduler has committed to run this round.
#[derive(Clone, Copy, Debug)]
struct Ready {
    stream: u32,
    frame: usize,
    arrival: Time,
    start: Time,
}

/// Worker-side per-stream state: the driver and the execution cursor,
/// behind a mutex so any worker can run the stream's next cycle. A stream
/// has at most one ready cycle per round, so the locks never contend —
/// they exist for thread-safety proof, not for queuing.
struct Slot<D> {
    driver: D,
    cursor: StreamCursor,
}

/// Per-stream backlog accounting at admission granularity.
///
/// The per-stream runner ([`crate::stream::StreamingRunner`] + `Block`)
/// observes queue depth `j − #{completions < a_j}` when its `j`-th
/// admitted arrival `a_j` joins a busy stream, and no depth at all when
/// the stream is idle (the frame goes straight into service — which is
/// exactly when that expression is zero). The elastic scheduler admits
/// arrivals at event-loop granularity, often rounds ahead of execution,
/// so its own queue depths are not comparable; this shadow re-derives the
/// per-stream sequence from the admitted-arrival and completion streams
/// alone. Both feeds are monotone, so a two-pointer classification is
/// exact in O(1) amortized: arrival `j` is judged once the stream's first
/// `j` completions are known (frames finish in order, and frame `j`
/// cannot finish before arrival `j` is admitted, so exactly `j`
/// completions are visible at that moment — later ones cannot leak in).
#[derive(Clone, Debug, Default)]
struct ShadowBacklog {
    /// Completion times recorded but not yet consumed by classification.
    comps: VecDeque<Time>,
    /// Total completions recorded.
    comp_seen: usize,
    /// Completions consumed, i.e. `#{completions < a_j}` for the last
    /// classified arrival (both feeds are monotone, so consumed
    /// completions never need revisiting).
    comps_popped: usize,
    /// Admitted arrivals awaiting classification.
    pending: VecDeque<Time>,
    /// Index of the next arrival to classify.
    classified: usize,
    /// High-water mark of the classified depths.
    max_backlog: usize,
}

impl ShadowBacklog {
    /// Record the stream's next admitted arrival (shed frames excluded).
    fn on_admit(&mut self, arrival: Time) {
        self.pending.push_back(arrival);
        self.drain();
    }

    /// Record the completion of the stream's next admitted frame.
    fn on_complete(&mut self, completion: Time) {
        self.comps.push_back(completion);
        self.comp_seen += 1;
        self.drain();
    }

    /// Classify every pending arrival whose completion prefix is known.
    fn drain(&mut self) {
        while let Some(&a) = self.pending.front() {
            if self.comp_seen < self.classified {
                break;
            }
            while self.comps.front().is_some_and(|&c| c < a) {
                self.comps.pop_front();
                self.comps_popped += 1;
            }
            self.max_backlog = self.max_backlog.max(self.classified - self.comps_popped);
            self.pending.pop_front();
            self.classified += 1;
        }
    }
}

/// Scheduler-side per-stream state (never crosses a thread boundary).
struct SchedStream<A> {
    source: A,
    /// Monotonicity clamp for source timestamps (same contract as
    /// `StreamingRunner`).
    floor: Time,
    /// Next frame index; shed frames consume theirs.
    next_frame: usize,
    /// Admitted frames not yet started: `(frame, arrival, counted)`,
    /// where `counted` records whether the frame was charged to the
    /// global backlog at admission.
    queue: VecDeque<(usize, Time, bool)>,
    /// A cycle of this stream is in the current round's ring.
    in_flight: bool,
    /// Admission-granular backlog account (see [`ShadowBacklog`]).
    shadow: ShadowBacklog,
}

/// The serial deterministic scheduling core: owns the heaps, the queues
/// and the ledger; fills the ring each round and folds completions back
/// in between rounds. Never sees the worker count.
struct Scheduler<A> {
    chaining: CycleChaining,
    admission: Admission,
    ring_capacity: usize,
    streams: Vec<SchedStream<A>>,
    start_heap: EventHeap,
    arrivals: ShardedEventHeap,
    /// Latest start time ever scheduled: arrivals beyond it wait, which
    /// bounds queue growth and keeps admission decisions near the
    /// execution frontier. Monotone, worker-count independent.
    horizon: Time,
    /// Aggregate count of `counted` frames currently queued.
    backlog: usize,
    ledger: ShedLedger,
}

impl<A: ArrivalSource> Scheduler<A> {
    fn new(config: ElasticConfig, lanes: usize, sources: Vec<A>) -> Scheduler<A> {
        let mut arrivals = ShardedEventHeap::new(lanes);
        let mut streams = Vec::with_capacity(sources.len());
        for (i, mut source) in sources.into_iter().enumerate() {
            let floor = Time::ZERO;
            if let Some(t) = source.peek() {
                arrivals.push(t.max(floor), i as u32);
            }
            streams.push(SchedStream {
                source,
                floor,
                next_frame: 0,
                queue: VecDeque::new(),
                in_flight: false,
                shadow: ShadowBacklog::default(),
            });
        }
        Scheduler {
            chaining: config.chaining,
            admission: config.admission,
            ring_capacity: config.ring_capacity.max(1),
            streams,
            start_heap: EventHeap::new(),
            arrivals,
            horizon: Time::NEG_INF,
            backlog: 0,
            ledger: ShedLedger::default(),
        }
    }

    /// Drain due events into `ring` (cleared first), up to capacity.
    /// Event order is the global `(time, start-before-arrival, stream)`
    /// order; an arrival is *due* once it is at or before the horizon, or
    /// unconditionally when nothing is scheduled at all (bootstrap). An
    /// empty ring on return means the run is complete.
    fn fill<D>(&mut self, ring: &mut Vec<Ready>, slots: &[Mutex<Slot<D>>]) {
        ring.clear();
        loop {
            if ring.len() == self.ring_capacity {
                break;
            }
            let start_top = self.start_heap.peek();
            let arrival_top = self.arrivals.peek_min();
            let arrival_due = match arrival_top {
                Some((ta, _)) => ta <= self.horizon || (ring.is_empty() && start_top.is_none()),
                None => false,
            };
            let take_start = match (start_top, arrival_top) {
                (Some(_), None) => true,
                (None, _) => false,
                // Start beats arrival on time ties: a stream's queued
                // frame begins before the next arrival is judged.
                (Some((ts, _)), Some((ta, _))) => !arrival_due || ts <= ta,
            };
            if take_start {
                let (ts, s) = self.start_heap.pop().expect("peeked");
                self.process_start(ts, s, ring);
            } else if arrival_due {
                let (ta, s) = self.arrivals.pop_min().expect("peeked");
                self.process_arrival(ta, s, slots);
            } else {
                break;
            }
        }
    }

    fn process_start(&mut self, ts: Time, s: u32, ring: &mut Vec<Ready>) {
        let st = &mut self.streams[s as usize];
        let (frame, arrival, counted) = st
            .queue
            .pop_front()
            .expect("a start event implies a queued frame");
        if counted {
            self.backlog -= 1;
        }
        st.in_flight = true;
        ring.push(Ready {
            stream: s,
            frame,
            arrival,
            start: ts,
        });
        self.horizon = self.horizon.max(ts);
    }

    fn process_arrival<D>(&mut self, ta: Time, s: u32, slots: &[Mutex<Slot<D>>]) {
        let st = &mut self.streams[s as usize];
        let frame = st.next_frame;
        st.next_frame += 1;
        self.ledger.arrived += 1;
        // Workers are parked while the scheduler runs, so slot locks are
        // uncontended here.
        let mut slot = slots[s as usize].lock().expect("slot lock");
        slot.cursor.note_arrival();
        // A frame counts toward the global backlog iff its stream is
        // already behind; only counted frames are ever shed.
        let counted = st.in_flight || !st.queue.is_empty();
        let shed = match self.admission {
            Admission::Unbounded => false,
            Admission::DropNewest { global_capacity } => counted && self.backlog >= global_capacity,
        };
        if shed {
            self.ledger.shed += 1;
            slot.cursor.note_drop();
        } else {
            self.ledger.admitted += 1;
            if counted {
                self.backlog += 1;
                self.ledger.peak_backlog = self.ledger.peak_backlog.max(self.backlog);
            }
            st.queue.push_back((frame, ta, counted));
            if !st.in_flight && st.queue.len() == 1 {
                self.start_heap
                    .push(slot.cursor.start_for(self.chaining, ta), s);
            }
            st.shadow.on_admit(ta);
        }
        drop(slot);
        // Consume the peeked timestamp and re-key the stream's lane on
        // the following one. peek-then-next ≡ next keeps this exact.
        let consumed = st
            .source
            .next_arrival()
            .expect("a queued arrival event implies a pending timestamp")
            .max(st.floor);
        st.floor = consumed;
        debug_assert_eq!(consumed, ta, "peeked and consumed timestamps agree");
        if let Some(next) = st.source.peek() {
            self.arrivals.push(next.max(st.floor), s);
        }
    }

    /// Fold a finished round back in: every executed stream's clock has
    /// advanced, so streams with queued frames get their next start
    /// event.
    fn complete_round<D>(&mut self, ring: &[Ready], slots: &[Mutex<Slot<D>>]) {
        for r in ring {
            let st = &mut self.streams[r.stream as usize];
            st.in_flight = false;
            let slot = slots[r.stream as usize].lock().expect("slot lock");
            st.shadow.on_complete(slot.cursor.now());
            if let Some(&(_, arrival, _)) = st.queue.front() {
                self.start_heap
                    .push(slot.cursor.start_for(self.chaining, arrival), r.stream);
            }
        }
        self.ledger.rounds += 1;
    }
}

/// Runs many live streams through per-cycle elastic scheduling on a
/// fixed-size pool of scoped OS threads.
///
/// Construction fixes the worker count and the [`ElasticConfig`]; one
/// runner value can drive many fleets. With one worker (or one stream)
/// everything runs inline on the caller's thread — which is also the
/// reference schedule every multi-worker run is guaranteed to reproduce
/// byte-for-byte.
///
/// # Examples
///
/// Four periodic streams over two workers; the aggregates match four
/// serial [`StreamingRunner`](crate::stream::StreamingRunner) runs:
///
/// ```
/// use sqm_core::controller::{ConstantExec, OverheadModel};
/// use sqm_core::elastic::{ElasticConfig, ElasticRunner, EngineDriver};
/// use sqm_core::engine::{Engine, NullSink};
/// use sqm_core::manager::NumericManager;
/// use sqm_core::policy::MixedPolicy;
/// use sqm_core::source::Periodic;
/// use sqm_core::system::SystemBuilder;
/// use sqm_core::time::Time;
///
/// let sys = SystemBuilder::new(2)
///     .action("decode", &[100, 200], &[60, 120])
///     .action("render", &[100, 200], &[60, 120])
///     .deadline_last(Time::from_ns(500))
///     .build()
///     .unwrap();
/// let policy = MixedPolicy::new(&sys);
///
/// let streams: Vec<_> = (0..4)
///     .map(|_| {
///         (
///             Periodic::new(Time::from_ns(500), 3),
///             EngineDriver::new(
///                 Engine::new(&sys, NumericManager::new(&sys, &policy), OverheadModel::ZERO),
///                 ConstantExec::average(sys.table()),
///                 NullSink,
///             ),
///         )
///     })
///     .collect();
///
/// let (summary, _drivers) = ElasticRunner::new(2, ElasticConfig::live()).run(streams);
/// assert_eq!(summary.n_streams(), 4);
/// assert_eq!(summary.run().cycles, 12);
/// assert_eq!(summary.stats().processed, 12);
/// assert_eq!(summary.ledger().shed, 0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ElasticRunner {
    workers: usize,
    config: ElasticConfig,
}

impl ElasticRunner {
    /// A runner with `workers` threads (clamped to at least 1) and the
    /// given configuration.
    pub fn new(workers: usize, config: ElasticConfig) -> ElasticRunner {
        ElasticRunner {
            workers: workers.max(1),
            config,
        }
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The runner's configuration.
    pub fn config(&self) -> ElasticConfig {
        self.config
    }

    /// Drain every stream's source, scheduling cycles fleet-wide in
    /// arrival order and executing each round's ready cycles on the
    /// worker pool. Returns the summary and the drivers (in submission
    /// order), so callers can extract sinks or reuse engines.
    pub fn run<A, D>(&self, streams: Vec<(A, D)>) -> (ElasticSummary, Vec<D>)
    where
        A: ArrivalSource,
        D: CycleDriver + Send,
    {
        assert!(
            u32::try_from(streams.len()).is_ok(),
            "stream ids are u32: at most {} streams",
            u32::MAX
        );
        let n = streams.len();
        let workers = self.workers.min(n.max(1));
        let mut sources = Vec::with_capacity(n);
        let mut slots = Vec::with_capacity(n);
        for (source, driver) in streams {
            sources.push(source);
            slots.push(Mutex::new(Slot {
                driver,
                cursor: StreamCursor::new(),
            }));
        }
        let mut sched = Scheduler::new(self.config, workers, sources);

        if workers == 1 {
            let mut ring = Vec::with_capacity(sched.ring_capacity);
            loop {
                sched.fill(&mut ring, &slots);
                if ring.is_empty() {
                    break;
                }
                for r in &ring {
                    execute(r, &slots[r.stream as usize]);
                }
                sched.complete_round(&ring, &slots);
            }
        } else {
            let ring_lock = RwLock::new(Vec::with_capacity(sched.ring_capacity));
            let cursors: Vec<CachePadded<AtomicUsize>> = (0..workers)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect();
            // Two waits per round: A releases workers onto a filled ring,
            // B hands control back to the scheduler.
            let barrier = Barrier::new(workers + 1);
            let done = AtomicBool::new(false);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let ring_lock = &ring_lock;
                    let cursors = &cursors;
                    let barrier = &barrier;
                    let done = &done;
                    let slots = &slots;
                    scope.spawn(move || {
                        let mut round = 0usize;
                        loop {
                            barrier.wait();
                            if done.load(Ordering::Acquire) {
                                break;
                            }
                            let ring = ring_lock.read().expect("ring lock");
                            let len = ring.len();
                            // Own segment first, then steal; victim order
                            // is a function of (worker, round) only —
                            // deterministic policy, and result-neutral
                            // because every claim goes through the
                            // segment cursors.
                            for step in 0..workers {
                                let v = (w + step + round) % workers;
                                if step > 0 && v == w {
                                    continue;
                                }
                                let v = if step == 0 { w } else { v };
                                let end = (v + 1) * len / workers;
                                loop {
                                    let i = cursors[v].fetch_add(1, Ordering::Relaxed);
                                    if i >= end {
                                        break;
                                    }
                                    let r = ring[i];
                                    execute(&r, &slots[r.stream as usize]);
                                }
                            }
                            drop(ring);
                            barrier.wait();
                            round += 1;
                        }
                    });
                }
                loop {
                    {
                        let mut ring = ring_lock.write().expect("ring lock");
                        sched.fill(&mut ring, &slots);
                        if ring.is_empty() {
                            done.store(true, Ordering::Release);
                            barrier.wait();
                            break;
                        }
                        let len = ring.len();
                        for (v, cursor) in cursors.iter().enumerate() {
                            cursor.store(v * len / workers, Ordering::Relaxed);
                        }
                    }
                    barrier.wait();
                    barrier.wait();
                    let ring = ring_lock.read().expect("ring lock");
                    sched.complete_round(&ring, &slots);
                }
            });
        }

        let mut summary = ElasticSummary {
            per_stream: Vec::with_capacity(n),
            run: RunSummary::default(),
            stats: StreamStats::default(),
            ledger: sched.ledger,
        };
        let mut drivers = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            let slot = slot.into_inner().expect("slot lock");
            let mut s = slot.cursor.summary();
            // The cursor never saw scheduler queue depths; the shadow
            // account supplies the admission-granular high-water mark.
            s.stats.max_backlog = sched.streams[i].shadow.max_backlog;
            summary.run.merge(&s.run);
            summary.stats.merge(&s.stats);
            summary.per_stream.push(s);
            drivers.push(slot.driver);
        }
        (summary, drivers)
    }
}

/// Run one ready cycle: the hot path every worker executes.
fn execute<D: CycleDriver>(r: &Ready, slot: &Mutex<Slot<D>>) {
    let mut slot = slot.lock().expect("slot lock");
    let summary = slot.driver.run_cycle(r.frame, r.start - r.arrival);
    slot.cursor.absorb(r.arrival, r.start, &summary);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ConstantExec, FnExec, OverheadModel};
    use crate::engine::NullSink;
    use crate::manager::NumericManager;
    use crate::policy::MixedPolicy;
    use crate::source::{Bursty, Jittered, PatternSource, Periodic};
    use crate::stream::{OverloadPolicy, StreamConfig, StreamingRunner};
    use crate::system::{ParameterizedSystem, SystemBuilder};

    const PERIOD: Time = Time::from_ns(130);

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(3)
            .action("a", &[10, 25, 40], &[4, 9, 14])
            .action("b", &[12, 22, 35], &[6, 11, 17])
            .action("c", &[8, 18, 28], &[3, 8, 12])
            .action("d", &[15, 24, 33], &[7, 12, 16])
            .deadline_last(PERIOD)
            .build()
            .unwrap()
    }

    fn source_mix(i: usize, frames: usize) -> PatternSource {
        match i % 3 {
            0 => PatternSource::Periodic(Periodic::new(PERIOD, frames)),
            1 => PatternSource::Jittered(Jittered::new(
                PERIOD,
                Time::from_ns(40),
                frames,
                7 + i as u64,
            )),
            _ => PatternSource::Bursty(Bursty::new(PERIOD, 4, frames, 11 + i as u64)),
        }
    }

    /// Seed-dependent deterministic exec times (cloneable across paths).
    fn exec_for(sys: &ParameterizedSystem, seed: u64) -> impl ExecutionTimeSource + Send + '_ {
        FnExec(
            move |cycle: usize, action: usize, q: crate::quality::Quality| {
                let wc = sys.table().wc(action, q).as_ns();
                let f = 40 + ((seed as usize + cycle + action) % 50) as i64;
                Time::from_ns(wc * f / 100)
            },
        )
    }

    fn drivers<'a>(
        s: &'a ParameterizedSystem,
        p: &'a MixedPolicy<'a>,
        n: usize,
        frames: usize,
    ) -> Vec<(PatternSource, impl CycleDriver + Send + 'a)> {
        (0..n)
            .map(|i| {
                (
                    source_mix(i, frames),
                    EngineDriver::new(
                        Engine::new(
                            s,
                            NumericManager::new(s, p),
                            OverheadModel::new(Time::from_ns(2), Time::from_ns(1)),
                        ),
                        exec_for(s, i as u64),
                        NullSink,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn event_heap_pops_sorted() {
        let mut heap = EventHeap::new();
        let times = [50i64, 10, 30, 10, 90, 0, 30, 70];
        for (i, t) in times.iter().enumerate() {
            heap.push(Time::from_ns(*t), i as u32);
        }
        assert_eq!(heap.len(), times.len());
        let mut out = Vec::new();
        while let Some(e) = heap.pop() {
            out.push(e);
        }
        let mut expected: Vec<(Time, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (Time::from_ns(*t), i as u32))
            .collect();
        expected.sort();
        assert_eq!(out, expected);
        assert!(heap.is_empty());
    }

    /// The sharded heap pops the same global order for every lane count —
    /// the property that makes per-worker lanes compatible with the
    /// determinism contract.
    #[test]
    fn sharded_heap_order_is_lane_count_independent() {
        let events: Vec<(Time, u32)> = (0..64u32)
            .map(|s| (Time::from_ns(((s * 37) % 19) as i64 * 10), s))
            .collect();
        let reference: Vec<(Time, u32)> = {
            let mut h = ShardedEventHeap::new(1);
            for &(t, s) in &events {
                h.push(t, s);
            }
            std::iter::from_fn(move || h.pop_min()).collect()
        };
        let mut sorted = events.clone();
        sorted.sort();
        assert_eq!(reference, sorted);
        for lanes in 2..=7 {
            let mut h = ShardedEventHeap::new(lanes);
            for &(t, s) in &events {
                h.push(t, s);
            }
            assert_eq!(h.lanes(), lanes);
            assert_eq!(h.len(), events.len());
            let popped: Vec<(Time, u32)> = std::iter::from_fn(|| h.pop_min()).collect();
            assert_eq!(popped, reference, "lanes = {lanes}");
        }
    }

    /// The heart of the tentpole: the whole `ElasticSummary` — per-stream
    /// summaries, aggregates and the ledger — is byte-identical for every
    /// worker count, under both chainings, both admissions, and a tiny
    /// ring that forces many rounds.
    #[test]
    fn worker_counts_are_byte_identical() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        for chaining in [CycleChaining::WorkConserving, CycleChaining::ArrivalClamped] {
            for admission in [
                Admission::Unbounded,
                Admission::DropNewest { global_capacity: 3 },
            ] {
                for ring in [3usize, 256] {
                    let config = ElasticConfig::live()
                        .with_chaining(chaining)
                        .with_ring_capacity(ring)
                        .with_admission(admission);
                    let (reference, _) = ElasticRunner::new(1, config).run(drivers(&s, &p, 12, 8));
                    assert_eq!(reference.n_streams(), 12);
                    assert!(reference.stats().processed > 0);
                    for workers in 2..=4 {
                        let (out, _) =
                            ElasticRunner::new(workers, config).run(drivers(&s, &p, 12, 8));
                        assert_eq!(
                            out, reference,
                            "workers={workers} ring={ring} {chaining:?} {admission:?}"
                        );
                    }
                }
            }
        }
    }

    /// Under `Admission::Unbounded`, each stream's result equals running
    /// it alone through `StreamingRunner` + `Block` — the *full* struct,
    /// `max_backlog` included (the shadow account re-derives the
    /// per-stream runner's depth sequence at admission granularity).
    #[test]
    fn unbounded_matches_streaming_runner_per_stream() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        for chaining in [CycleChaining::WorkConserving, CycleChaining::ArrivalClamped] {
            let config = ElasticConfig::live()
                .with_chaining(chaining)
                .with_ring_capacity(4);
            let (elastic, _) = ElasticRunner::new(3, config).run(drivers(&s, &p, 9, 10));
            for (i, got) in elastic.per_stream().iter().enumerate() {
                let runner = StreamingRunner::new(StreamConfig {
                    chaining,
                    capacity: 2,
                    policy: OverloadPolicy::Block,
                });
                let want = runner.run(
                    &mut Engine::new(
                        &s,
                        NumericManager::new(&s, &p),
                        OverheadModel::new(Time::from_ns(2), Time::from_ns(1)),
                    ),
                    &mut source_mix(i, 10),
                    &mut exec_for(&s, i as u64),
                    &mut NullSink,
                );
                assert_eq!(*got, want, "stream {i} {chaining:?}");
            }
        }
    }

    /// Global shedding: overloaded fleets shed deterministically, the
    /// ledger's books balance against the per-stream stats, and a stream
    /// that keeps up is never shed even while the rest of the fleet
    /// drowns.
    #[test]
    fn global_shed_ledger_balances_and_spares_prompt_streams() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let frames = 24;
        // Streams 0..5 arrive at 4x the sustainable rate; stream 5 is
        // periodic at a comfortable period.
        let build = || -> Vec<(PatternSource, _)> {
            (0..6)
                .map(|i| {
                    let src = if i < 5 {
                        PatternSource::Periodic(Periodic::new(
                            Time::from_ns(PERIOD.as_ns() / 4),
                            frames,
                        ))
                    } else {
                        PatternSource::Periodic(Periodic::new(
                            Time::from_ns(PERIOD.as_ns() * 2),
                            frames,
                        ))
                    };
                    (
                        src,
                        EngineDriver::new(
                            Engine::new(
                                &s,
                                NumericManager::new(&s, &p),
                                OverheadModel::new(Time::from_ns(2), Time::from_ns(1)),
                            ),
                            exec_for(&s, i as u64),
                            NullSink,
                        ),
                    )
                })
                .collect()
        };
        let config = ElasticConfig::live()
            .with_admission(Admission::DropNewest { global_capacity: 4 })
            .with_ring_capacity(8);
        let (out, _) = ElasticRunner::new(1, config).run(build());
        let ledger = *out.ledger();
        assert_eq!(ledger.arrived, 6 * frames);
        assert_eq!(ledger.admitted + ledger.shed, ledger.arrived);
        assert!(ledger.shed > 0, "4x overload must shed: {ledger:?}");
        assert!(ledger.peak_backlog <= 4, "capacity bound: {ledger:?}");
        assert!(ledger.rounds > 1, "tiny ring forces many rounds");
        assert_eq!(out.stats().arrived, ledger.arrived);
        assert_eq!(out.stats().dropped, ledger.shed);
        assert_eq!(out.stats().processed, ledger.admitted);
        // The prompt stream is untouched by everyone else's overload.
        let prompt = out.stream(5);
        assert_eq!(prompt.stats.dropped, 0, "prompt stream never shed");
        assert_eq!(prompt.stats.processed, frames);
        // Deterministic across worker counts (also covered broadly by
        // `worker_counts_are_byte_identical`).
        let (again, _) = ElasticRunner::new(4, config).run(build());
        assert_eq!(again, out);
    }

    /// A ring of capacity 1 degenerates to one cycle per round and still
    /// produces the same per-stream results as a huge ring (admission
    /// differs only under global capacity pressure, absent here) —
    /// `max_backlog` included: the shadow account is a function of each
    /// stream's arrival and completion sequences, so ring granularity
    /// (like worker count) never moves it.
    #[test]
    fn ring_capacity_does_not_change_unbounded_results() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let big = ElasticRunner::new(2, ElasticConfig::live().with_ring_capacity(1 << 12))
            .run(drivers(&s, &p, 7, 6))
            .0;
        let tiny = ElasticRunner::new(2, ElasticConfig::live().with_ring_capacity(1))
            .run(drivers(&s, &p, 7, 6))
            .0;
        assert_eq!(big.per_stream(), tiny.per_stream());
        assert!(tiny.ledger().rounds > big.ledger().rounds);
    }

    #[test]
    fn empty_fleet_and_empty_sources_are_defaults() {
        let runner = ElasticRunner::new(4, ElasticConfig::live());
        type Dri<'a> =
            EngineDriver<'a, NumericManager<'a, MixedPolicy<'a>>, ConstantExec<'a>, NullSink>;
        let (out, drivers) = runner.run(Vec::<(Periodic, Dri<'_>)>::new());
        let _ = drivers;
        assert_eq!(out, ElasticSummary::default());

        let s = sys();
        let p = MixedPolicy::new(&s);
        let empty: Vec<(PatternSource, _)> = (0..3)
            .map(|_| {
                (
                    PatternSource::Periodic(Periodic::new(PERIOD, 0)),
                    EngineDriver::new(
                        Engine::new(&s, NumericManager::new(&s, &p), OverheadModel::ZERO),
                        ConstantExec::average(s.table()),
                        NullSink,
                    ),
                )
            })
            .collect();
        let (out, _) = runner.run(empty);
        assert_eq!(out.n_streams(), 3);
        assert_eq!(*out.run(), RunSummary::default());
        assert_eq!(out.ledger().arrived, 0);
    }
}
