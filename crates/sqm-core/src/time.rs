//! Integer time base.
//!
//! All safety-critical comparisons in the quality manager (region bounds,
//! deadlines, `tD` values) are carried out on a signed 64-bit count of
//! nanoseconds. The paper stores region tables as integers for exactly this
//! reason: the symbolic tables must be bit-exact with the numeric policy, and
//! floating point would make `Rq` membership checks drift from the online
//! computation.
//!
//! `Time` is a *point or span* on the virtual time line. Negative values are
//! meaningful: `tD(s, q)` can be negative when a configuration is infeasible
//! (the budget is exhausted before the remaining worst case), and relative
//! cycle time can be negative when the previous cycle finished early.
//! Two sentinels, [`Time::NEG_INF`] and [`Time::INF`], encode the open
//! region bounds of Proposition 2 (`(-∞, tD(s, qmax)]`). All arithmetic is
//! saturating so the sentinels are absorbing.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A point in time or a duration, in nanoseconds (signed).
///
/// ```
/// use sqm_core::time::Time;
/// let t = Time::from_ms(30_000); // the paper's 30 s global deadline
/// assert_eq!(t.as_secs_f64(), 30.0);
/// assert!(Time::NEG_INF < Time::ZERO && Time::ZERO < Time::INF);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Time {
    /// The origin / the zero duration.
    pub const ZERO: Time = Time(0);
    /// Absorbing "plus infinity" (no deadline / unconstrained upper bound).
    pub const INF: Time = Time(i64::MAX);
    /// Absorbing "minus infinity" (open lower bound of the `qmax` region).
    pub const NEG_INF: Time = Time(i64::MIN);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: i64) -> Time {
        Time(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: i64) -> Time {
        Time(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: i64) -> Time {
        Time(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Time {
        Time(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Time {
        Time((s * 1e9).round() as i64)
    }

    /// Nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> i64 {
        self.0
    }

    /// Value in seconds, as `f64` (observational use only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in milliseconds, as `f64` (observational use only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` for either infinity sentinel.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.0 == i64::MAX || self.0 == i64::MIN
    }

    /// Saturating addition; the sentinels are absorbing.
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction; the sentinels are absorbing.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication by an integer scalar.
    #[inline]
    pub const fn saturating_mul(self, k: i64) -> Time {
        Time(self.0.saturating_mul(k))
    }

    /// Multiplication by an integer scalar that refuses to alias the
    /// sentinels: `None` on `i64` overflow *and* when the exact product
    /// lands on [`Time::INF`] or [`Time::NEG_INF`] — a finite computation
    /// must never be mistaken for an open bound. Arrival sources use this
    /// to turn "the grid ran off the representable time line" into a
    /// typed horizon outcome instead of a silent sentinel
    /// ([`crate::source::Exhaustion::HorizonExceeded`]).
    ///
    /// ```
    /// use sqm_core::time::Time;
    /// assert_eq!(
    ///     Time::from_ns(30).checked_mul(4),
    ///     Some(Time::from_ns(120))
    /// );
    /// assert_eq!(Time::from_ns(i64::MAX / 2).checked_mul(3), None);
    /// assert_eq!(Time::from_ns(i64::MAX).checked_mul(1), None, "sentinel");
    /// ```
    #[inline]
    pub const fn checked_mul(self, k: i64) -> Option<Time> {
        match self.0.checked_mul(k) {
            Some(ns) if ns != i64::MAX && ns != i64::MIN => Some(Time(ns)),
            _ => None,
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Time, hi: Time) -> Time {
        debug_assert!(lo <= hi);
        self.max(lo).min(hi)
    }

    /// `true` if this time is non-negative (a valid elapsed time).
    #[inline]
    pub const fn is_non_negative(self) -> bool {
        self.0 >= 0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        // Negating i64::MIN would overflow; map the sentinels onto each other.
        if self == Time::NEG_INF {
            Time::INF
        } else {
            Time(-self.0)
        }
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Time::INF => write!(f, "+inf"),
            Time::NEG_INF => write!(f, "-inf"),
            Time(ns) => write!(f, "{ns}ns"),
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Time::INF => write!(f, "+inf"),
            Time::NEG_INF => write!(f, "-inf"),
            Time(ns) => {
                let abs = ns.unsigned_abs();
                if abs >= 1_000_000_000 {
                    write!(f, "{:.3}s", self.as_secs_f64())
                } else if abs >= 1_000_000 {
                    write!(f, "{:.3}ms", self.as_millis_f64())
                } else if abs >= 1_000 {
                    write!(f, "{:.3}us", ns as f64 / 1e3)
                } else {
                    write!(f, "{ns}ns")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
        assert_eq!(Time::from_secs_f64(0.5), Time::from_ms(500));
    }

    #[test]
    fn ordering_and_sentinels() {
        assert!(Time::NEG_INF < Time::from_ns(i64::MIN + 1));
        assert!(Time::from_ns(i64::MAX - 1) < Time::INF);
        assert!(Time::NEG_INF.is_infinite());
        assert!(Time::INF.is_infinite());
        assert!(!Time::ZERO.is_infinite());
    }

    #[test]
    fn saturating_arithmetic_absorbs_sentinels() {
        assert_eq!(Time::INF + Time::from_secs(5), Time::INF);
        assert_eq!(
            Time::INF - Time::from_secs(5),
            Time::INF - Time::from_secs(5)
        );
        assert_eq!(Time::NEG_INF + Time::from_ns(-1), Time::NEG_INF);
        assert_eq!(Time::INF.saturating_add(Time::INF), Time::INF);
        assert_eq!(Time::NEG_INF.saturating_sub(Time::INF), Time::NEG_INF);
    }

    #[test]
    fn checked_mul_rejects_overflow_and_sentinels() {
        assert_eq!(Time::from_ns(100).checked_mul(3), Some(Time::from_ns(300)));
        assert_eq!(Time::from_ns(-5).checked_mul(2), Some(Time::from_ns(-10)));
        assert_eq!(Time::ZERO.checked_mul(i64::MAX), Some(Time::ZERO));
        // Overflow in either direction is refused, not saturated.
        assert_eq!(Time::from_ns(i64::MAX / 2 + 1).checked_mul(2), None);
        assert_eq!(Time::from_ns(i64::MIN / 2 - 1).checked_mul(2), None);
        // Exact products on a sentinel would alias an open bound.
        assert_eq!(Time::INF.checked_mul(1), None);
        assert_eq!(Time::NEG_INF.checked_mul(1), None);
        assert_eq!(Time::from_ns(-i64::MAX).checked_mul(-1), None);
    }

    #[test]
    fn negation_swaps_sentinels() {
        assert_eq!(-Time::INF, Time::from_ns(-i64::MAX));
        assert_eq!(-Time::NEG_INF, Time::INF);
        assert_eq!(-Time::from_ns(7), Time::from_ns(-7));
    }

    #[test]
    fn min_max_clamp() {
        let a = Time::from_ns(3);
        let b = Time::from_ns(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Time::from_ns(100).clamp(a, b), b);
        assert_eq!(Time::from_ns(-4).clamp(a, b), a);
        assert_eq!(Time::from_ns(5).clamp(a, b), Time::from_ns(5));
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [1, 2, 3].iter().map(|&n| Time::from_ns(n)).sum();
        assert_eq!(total, Time::from_ns(6));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Time::from_ns(12).to_string(), "12ns");
        assert_eq!(Time::from_us(12).to_string(), "12.000us");
        assert_eq!(Time::from_ms(12).to_string(), "12.000ms");
        assert_eq!(Time::from_secs(12).to_string(), "12.000s");
        assert_eq!(Time::INF.to_string(), "+inf");
        assert_eq!(Time::NEG_INF.to_string(), "-inf");
    }
}
