//! Arrival sources — *where cycles come from* in live operation.
//!
//! The paper's evaluation runs a closed loop: cycle `c + 1` is available
//! the instant cycle `c` finishes (file encode), or at its period boundary
//! (live capture, [`CycleChaining::ArrivalClamped`]). A production
//! front-end is event-driven instead: frames arrive from capture hardware,
//! a network socket, or an upstream pipeline stage, at times the quality
//! manager does not control. An [`ArrivalSource`] abstracts that event
//! stream down to the one thing the execution layer needs — **the arrival
//! timestamp of the next cycle** — and [`crate::stream::StreamingRunner`]
//! pulls cycles from a source onto the shared [`crate::engine::Engine`].
//!
//! Built-in sources:
//!
//! * [`Periodic`] — one frame every `period`; with the `Block` overload
//!   policy this reproduces the closed loop *exactly* (both
//!   [`CycleChaining`] variants are pinned byte-identical by test).
//! * [`Jittered`] — periodic with bounded uniform jitter, deterministic
//!   per seed (the `rand` shim's seeded generator).
//! * [`Bursty`] — frames arrive in bursts at the nominal average rate,
//!   burst sizes drawn per seed — the pattern that exercises backlog
//!   bounds and overload policies.
//! * [`TraceReplay`] — recorded arrival timestamps, for replaying captured
//!   traffic byte-for-byte.
//! * [`FnSource`] — closure-backed, for tests and custom feeds.
//!
//! All sources are deterministic: the streaming layer inherits the fleet
//! layer's property that results depend only on specs and seeds, never on
//! host scheduling. Timestamps must be non-decreasing; every built-in
//! source guarantees it, and the runner clamps defensively.
//!
//! Sources never yield the [`Time::INF`] sentinel: a grid position whose
//! timestamp would overflow onto (or alias) a sentinel ends the stream
//! with a typed [`Exhaustion::HorizonExceeded`] outcome instead —
//! `peek` and `next_arrival` agree on the cut, and
//! [`ArrivalSource::exhaustion`] distinguishes it from an ordinary
//! drained stream.
//!
//! [`CycleChaining`]: crate::engine::CycleChaining
//! [`CycleChaining::ArrivalClamped`]: crate::engine::CycleChaining::ArrivalClamped

use crate::time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why an [`ArrivalSource`] stopped yielding timestamps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Exhaustion {
    /// The source delivered every frame it had (the ordinary end).
    #[default]
    Drained,
    /// The next arrival's timestamp would have overflowed onto (or
    /// aliased) a [`Time::INF`]/[`Time::NEG_INF`] sentinel, so the source
    /// cut the stream at the representable horizon instead of yielding a
    /// value schedulers would misread as "no event".
    HorizonExceeded,
}

/// An event stream of cycle arrivals: yields the absolute arrival
/// timestamp of the next frame, or `None` when the stream ends.
///
/// Timestamps must be non-decreasing and **finite** (never a sentinel).
/// Frame indices are implicit — the `n`-th yielded timestamp is frame
/// `n`, and a frame dropped by an overload policy still consumes its
/// index (replay stays aligned).
pub trait ArrivalSource {
    /// Arrival time of the next frame on the run's absolute time line, or
    /// `None` when the stream has ended.
    fn next_arrival(&mut self) -> Option<Time>;

    /// Arrival time of the next frame *without consuming it*: the next
    /// [`ArrivalSource::next_arrival`] call returns exactly this value.
    ///
    /// Schedulers use `peek` to key event heaps by each stream's next
    /// virtual arrival before committing to admit the frame
    /// ([`crate::elastic`]); `peek` must therefore be side-effect-free as
    /// observed through `next_arrival` — peek-then-next ≡ next, for every
    /// source kind and seed (pinned by proptest in `tests/sources.rs`).
    /// Sources that draw randomness materialize the pending timestamp on
    /// first peek and hand the *same* value to the consuming call.
    fn peek(&mut self) -> Option<Time>;

    /// Why the stream ended, once `next_arrival`/`peek` return `None`
    /// (unspecified before then). The default is [`Exhaustion::Drained`];
    /// grid-based sources report [`Exhaustion::HorizonExceeded`] when the
    /// cut was forced by timestamp overflow rather than frame count.
    fn exhaustion(&self) -> Exhaustion {
        Exhaustion::Drained
    }
}

impl<A: ArrivalSource + ?Sized> ArrivalSource for &mut A {
    fn next_arrival(&mut self) -> Option<Time> {
        (**self).next_arrival()
    }

    fn peek(&mut self) -> Option<Time> {
        (**self).peek()
    }

    fn exhaustion(&self) -> Exhaustion {
        (**self).exhaustion()
    }
}

/// One frame every `period`, starting at time zero — the closed loop's
/// arrival pattern, made explicit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Periodic {
    period: Time,
    frames: usize,
    next: usize,
    exhaustion: Exhaustion,
}

impl Periodic {
    /// `frames` arrivals at `0, period, 2·period, …`.
    pub fn new(period: Time, frames: usize) -> Periodic {
        Periodic {
            period,
            frames,
            next: 0,
            exhaustion: Exhaustion::Drained,
        }
    }

    /// The grid position of the next frame, or `None` (recording the
    /// horizon cut) when `next · period` no longer fits the time line.
    fn grid(&mut self) -> Option<Time> {
        if self.next == self.frames {
            return None;
        }
        let t = self.period.checked_mul(self.next as i64);
        if t.is_none() {
            self.exhaustion = Exhaustion::HorizonExceeded;
        }
        t
    }
}

impl ArrivalSource for Periodic {
    fn next_arrival(&mut self) -> Option<Time> {
        let t = self.grid()?;
        self.next += 1;
        Some(t)
    }

    fn peek(&mut self) -> Option<Time> {
        self.grid()
    }

    fn exhaustion(&self) -> Exhaustion {
        self.exhaustion
    }
}

/// Periodic arrivals with bounded uniform jitter: frame `c` arrives at
/// `c · period + U(−jitter, +jitter)`, clamped non-negative and
/// non-decreasing. Deterministic per seed.
#[derive(Clone, Debug)]
pub struct Jittered {
    period: Time,
    jitter: Time,
    frames: usize,
    next: usize,
    floor: Time,
    // Timestamp already drawn by `peek` and not yet consumed — the RNG
    // advances exactly once per frame no matter how the draw is observed.
    pending: Option<Time>,
    exhaustion: Exhaustion,
    rng: StdRng,
}

impl Jittered {
    /// `frames` arrivals around the `period` grid, jittered by at most
    /// `jitter` either way, seeded deterministically.
    pub fn new(period: Time, jitter: Time, frames: usize, seed: u64) -> Jittered {
        Jittered {
            period,
            jitter,
            frames,
            next: 0,
            floor: Time::ZERO,
            pending: None,
            exhaustion: Exhaustion::Drained,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn draw(&mut self) -> Option<Time> {
        if self.next == self.frames || self.exhaustion == Exhaustion::HorizonExceeded {
            return None;
        }
        let Some(nominal) = self.period.checked_mul(self.next as i64) else {
            self.exhaustion = Exhaustion::HorizonExceeded;
            return None;
        };
        let j = self.jitter.as_ns();
        let offset = if j > 0 { self.rng.gen_range(-j..=j) } else { 0 };
        let t = (nominal + Time::from_ns(offset)).max(self.floor);
        if t.is_infinite() {
            // Jitter pushed the last grid position onto the sentinel.
            self.exhaustion = Exhaustion::HorizonExceeded;
            return None;
        }
        self.floor = t;
        self.next += 1;
        Some(t)
    }
}

impl ArrivalSource for Jittered {
    fn next_arrival(&mut self) -> Option<Time> {
        match self.pending.take() {
            Some(t) => Some(t),
            None => self.draw(),
        }
    }

    fn peek(&mut self) -> Option<Time> {
        if self.pending.is_none() {
            self.pending = self.draw();
        }
        self.pending
    }

    fn exhaustion(&self) -> Exhaustion {
        self.exhaustion
    }
}

/// Bursty arrivals at the nominal average rate: frames arrive in bursts of
/// `1..=max_burst` (drawn per seed) that share one timestamp; the next
/// burst follows after `burst_size · period`, so the long-run rate is one
/// frame per `period`. This is the pattern that fills backlog queues and
/// triggers overload policies.
#[derive(Clone, Debug)]
pub struct Bursty {
    period: Time,
    max_burst: usize,
    frames: usize,
    emitted: usize,
    burst_left: usize,
    burst_time: Time,
    next_time: Time,
    // Timestamp already drawn by `peek` and not yet consumed.
    pending: Option<Time>,
    exhaustion: Exhaustion,
    rng: StdRng,
}

impl Bursty {
    /// `frames` arrivals in bursts of up to `max_burst` (at least 1),
    /// averaging one frame per `period`, seeded deterministically.
    pub fn new(period: Time, max_burst: usize, frames: usize, seed: u64) -> Bursty {
        Bursty {
            period,
            max_burst: max_burst.max(1),
            frames,
            emitted: 0,
            burst_left: 0,
            burst_time: Time::ZERO,
            next_time: Time::ZERO,
            pending: None,
            exhaustion: Exhaustion::Drained,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn draw(&mut self) -> Option<Time> {
        if self.emitted == self.frames {
            return None;
        }
        if self.burst_left == 0 {
            // A previous burst already pushed the schedule off the time
            // line: the current burst was emitted in full, the next one
            // never starts.
            if self.next_time.is_infinite() {
                self.exhaustion = Exhaustion::HorizonExceeded;
                return None;
            }
            let size = self.rng.gen_range(1..=self.max_burst);
            self.burst_left = size;
            self.burst_time = self.next_time;
            self.next_time = match self
                .period
                .checked_mul(size as i64)
                .map(|span| self.burst_time + span)
                .filter(|t| !t.is_infinite())
            {
                Some(t) => t,
                // Overflow: park the schedule on the sentinel so the
                // *next* burst reports the horizon; this burst's shared
                // timestamp is still finite and still emitted.
                None => Time::INF,
            };
        }
        self.burst_left -= 1;
        self.emitted += 1;
        Some(self.burst_time)
    }
}

impl ArrivalSource for Bursty {
    fn next_arrival(&mut self) -> Option<Time> {
        match self.pending.take() {
            Some(t) => Some(t),
            None => self.draw(),
        }
    }

    fn peek(&mut self) -> Option<Time> {
        if self.pending.is_none() {
            self.pending = self.draw();
        }
        self.pending
    }

    fn exhaustion(&self) -> Exhaustion {
        self.exhaustion
    }
}

/// Replays recorded arrival timestamps (sorted on construction so the
/// non-decreasing contract holds even for unordered captures).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceReplay {
    times: Vec<Time>,
    next: usize,
}

impl TraceReplay {
    /// A source replaying `times` in non-decreasing order.
    pub fn new(mut times: Vec<Time>) -> TraceReplay {
        times.sort_unstable();
        TraceReplay { times, next: 0 }
    }

    /// Number of timestamps left to yield.
    pub fn remaining(&self) -> usize {
        self.times.len() - self.next
    }
}

impl ArrivalSource for TraceReplay {
    fn next_arrival(&mut self) -> Option<Time> {
        let t = self.times.get(self.next).copied()?;
        self.next += 1;
        Some(t)
    }

    fn peek(&mut self) -> Option<Time> {
        self.times.get(self.next).copied()
    }
}

/// Closure-backed source for tests and ad-hoc feeds. The closure's
/// timestamps must be non-decreasing.
///
/// Peeking calls the closure at most once per frame and buffers the
/// result, so the closure still observes exactly one call per yielded
/// timestamp.
pub struct FnSource<F> {
    f: F,
    pending: Option<Time>,
}

impl<F: FnMut() -> Option<Time>> FnSource<F> {
    /// A source yielding whatever `f` returns.
    pub fn new(f: F) -> FnSource<F> {
        FnSource { f, pending: None }
    }
}

impl<F: FnMut() -> Option<Time>> ArrivalSource for FnSource<F> {
    fn next_arrival(&mut self) -> Option<Time> {
        match self.pending.take() {
            Some(t) => Some(t),
            None => (self.f)(),
        }
    }

    fn peek(&mut self) -> Option<Time> {
        if self.pending.is_none() {
            self.pending = (self.f)();
        }
        self.pending
    }
}

/// A *description* of an arrival pattern — plain data a
/// [`crate::fleet::StreamSpec`] can carry across threads, turned into a
/// concrete source per stream via [`ArrivalSpec::build`] (the stream's
/// period, frame count and seed fill in the parameters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArrivalSpec {
    /// Closed loop: input pre-buffered, the engine's own
    /// [`crate::engine::CycleChaining`] drives timing (today's behaviour).
    #[default]
    Closed,
    /// [`Periodic`] arrivals at the stream's nominal period.
    Periodic,
    /// [`Jittered`] arrivals; jitter bound is `jitter_pct`% of the period.
    Jittered {
        /// Jitter bound as a percentage of the period (0–100).
        jitter_pct: u8,
    },
    /// [`Bursty`] arrivals with bursts of up to `max_burst` frames.
    Bursty {
        /// Largest burst size (clamped to at least 1).
        max_burst: u8,
    },
}

impl ArrivalSpec {
    /// Display label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ArrivalSpec::Closed => "closed",
            ArrivalSpec::Periodic => "periodic",
            ArrivalSpec::Jittered { .. } => "jittered",
            ArrivalSpec::Bursty { .. } => "bursty",
        }
    }

    /// Instantiate the pattern for one stream: `period` frames apart on
    /// average, `frames` arrivals, randomness seeded from `seed`. Returns
    /// `None` for [`ArrivalSpec::Closed`] (no event source — run the
    /// engine's closed loop).
    pub fn build(self, period: Time, frames: usize, seed: u64) -> Option<PatternSource> {
        match self {
            ArrivalSpec::Closed => None,
            ArrivalSpec::Periodic => Some(PatternSource::Periodic(Periodic::new(period, frames))),
            ArrivalSpec::Jittered { jitter_pct } => {
                let jitter = Time::from_ns(period.as_ns() * i64::from(jitter_pct) / 100);
                Some(PatternSource::Jittered(Jittered::new(
                    period, jitter, frames, seed,
                )))
            }
            ArrivalSpec::Bursty { max_burst } => Some(PatternSource::Bursty(Bursty::new(
                period,
                usize::from(max_burst),
                frames,
                seed,
            ))),
        }
    }
}

/// A concrete source built from an [`ArrivalSpec`] — an enum, not a trait
/// object, so fleet drive closures stay statically dispatched.
#[derive(Clone, Debug)]
pub enum PatternSource {
    /// Built from [`ArrivalSpec::Periodic`].
    Periodic(Periodic),
    /// Built from [`ArrivalSpec::Jittered`].
    Jittered(Jittered),
    /// Built from [`ArrivalSpec::Bursty`].
    Bursty(Bursty),
}

impl ArrivalSource for PatternSource {
    fn next_arrival(&mut self) -> Option<Time> {
        match self {
            PatternSource::Periodic(s) => s.next_arrival(),
            PatternSource::Jittered(s) => s.next_arrival(),
            PatternSource::Bursty(s) => s.next_arrival(),
        }
    }

    fn peek(&mut self) -> Option<Time> {
        match self {
            PatternSource::Periodic(s) => s.peek(),
            PatternSource::Jittered(s) => s.peek(),
            PatternSource::Bursty(s) => s.peek(),
        }
    }

    fn exhaustion(&self) -> Exhaustion {
        match self {
            PatternSource::Periodic(s) => s.exhaustion(),
            PatternSource::Jittered(s) => s.exhaustion(),
            PatternSource::Bursty(s) => s.exhaustion(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<A: ArrivalSource>(mut src: A) -> Vec<Time> {
        let mut out = Vec::new();
        while let Some(t) = src.next_arrival() {
            out.push(t);
        }
        out
    }

    #[test]
    fn periodic_hits_the_grid() {
        let times = drain(Periodic::new(Time::from_ns(100), 4));
        assert_eq!(
            times,
            vec![
                Time::ZERO,
                Time::from_ns(100),
                Time::from_ns(200),
                Time::from_ns(300)
            ]
        );
        assert_eq!(drain(Periodic::new(Time::from_ns(100), 0)), vec![]);
    }

    #[test]
    fn jittered_is_deterministic_monotone_and_bounded() {
        let a = drain(Jittered::new(Time::from_ns(100), Time::from_ns(30), 64, 7));
        let b = drain(Jittered::new(Time::from_ns(100), Time::from_ns(30), 64, 7));
        assert_eq!(a, b, "same seed, same arrivals");
        let c = drain(Jittered::new(Time::from_ns(100), Time::from_ns(30), 64, 8));
        assert_ne!(a, c, "different seed, different arrivals");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        assert!(a.iter().all(|t| *t >= Time::ZERO));
        for (i, t) in a.iter().enumerate() {
            let nominal = 100 * i as i64;
            assert!(
                (t.as_ns() - nominal).abs() <= 30 || t.as_ns() == a[i - 1].as_ns(),
                "frame {i} at {t:?} strays from {nominal}±30"
            );
        }
    }

    #[test]
    fn zero_jitter_is_periodic() {
        assert_eq!(
            drain(Jittered::new(Time::from_ns(100), Time::ZERO, 8, 1)),
            drain(Periodic::new(Time::from_ns(100), 8)),
        );
    }

    #[test]
    fn bursty_keeps_the_average_rate() {
        let times = drain(Bursty::new(Time::from_ns(100), 4, 256, 3));
        assert_eq!(times.len(), 256);
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        // Bursts share timestamps; the next burst is burst_size periods on.
        assert!(
            times.windows(2).any(|w| w[0] == w[1]),
            "max_burst 4 must produce at least one multi-frame burst"
        );
        // Average rate: the spacing budget equals frames · period exactly,
        // counted burst by burst, so the last burst's start is below
        // frames · period.
        assert!(times[255] < Time::from_ns(100 * 256));
        assert_eq!(
            drain(Bursty::new(Time::from_ns(100), 4, 256, 3)),
            times,
            "deterministic per seed"
        );
    }

    #[test]
    fn bursty_with_burst_one_is_periodic() {
        assert_eq!(
            drain(Bursty::new(Time::from_ns(100), 1, 8, 9)),
            drain(Periodic::new(Time::from_ns(100), 8)),
        );
    }

    #[test]
    fn trace_replay_sorts_and_replays() {
        let src = TraceReplay::new(vec![Time::from_ns(50), Time::ZERO, Time::from_ns(20)]);
        assert_eq!(src.remaining(), 3);
        assert_eq!(
            drain(src),
            vec![Time::ZERO, Time::from_ns(20), Time::from_ns(50)]
        );
    }

    #[test]
    fn arrival_spec_builds_matching_sources() {
        let period = Time::from_ns(100);
        assert!(ArrivalSpec::Closed.build(period, 4, 1).is_none());
        assert_eq!(
            drain(ArrivalSpec::Periodic.build(period, 4, 1).unwrap()),
            drain(Periodic::new(period, 4)),
        );
        assert_eq!(
            drain(
                ArrivalSpec::Jittered { jitter_pct: 25 }
                    .build(period, 16, 5)
                    .unwrap()
            ),
            drain(Jittered::new(period, Time::from_ns(25), 16, 5)),
        );
        assert_eq!(
            drain(
                ArrivalSpec::Bursty { max_burst: 3 }
                    .build(period, 16, 5)
                    .unwrap()
            ),
            drain(Bursty::new(period, 3, 16, 5)),
        );
        assert_eq!(ArrivalSpec::default(), ArrivalSpec::Closed);
        assert_eq!(ArrivalSpec::Bursty { max_burst: 3 }.label(), "bursty");
    }

    #[test]
    fn fn_source_yields_closure_values() {
        let mut v = vec![Time::from_ns(10), Time::ZERO].into_iter();
        let times = drain(FnSource::new(move || v.next()));
        assert_eq!(times, vec![Time::from_ns(10), Time::ZERO]);
    }

    /// A huge period drives the arrival grid to the edge of the time line
    /// within a handful of frames. The old `saturating_mul` arithmetic
    /// aliased the overflowed arrival onto `Time::INF` and handed the
    /// sentinel out as a real timestamp; now the stream cuts at the
    /// horizon with a typed outcome, `peek` and `next_arrival` agreeing
    /// frame for frame.
    #[test]
    fn grid_sources_cut_at_the_horizon_instead_of_yielding_sentinels() {
        // period · 2 lands exactly on i64::MAX (the INF sentinel); frame
        // 3 would overflow i64 outright. Both must cut the stream.
        let period = Time::from_ns(i64::MAX / 2 + 1);
        let many = 1_000;

        let mut p = Periodic::new(period, many);
        assert_eq!(p.exhaustion(), Exhaustion::Drained);
        assert_eq!(p.peek(), Some(Time::ZERO));
        assert_eq!(p.next_arrival(), Some(Time::ZERO));
        assert_eq!(p.next_arrival(), Some(period));
        assert_eq!(p.peek(), None, "frame 2 aliases INF: horizon");
        assert_eq!(p.next_arrival(), None);
        assert_eq!(p.exhaustion(), Exhaustion::HorizonExceeded);
        assert_eq!(p.peek(), None, "the cut is permanent");

        // An in-range grid still drains normally.
        let mut p = Periodic::new(Time::from_ns(100), 2);
        assert_eq!(drain(&mut p).len(), 2);
        assert_eq!(p.exhaustion(), Exhaustion::Drained);

        // Jittered: same grid, zero jitter — identical cut; exercised
        // through peek to pin the pending-buffer path.
        let mut j = Jittered::new(period, Time::ZERO, many, 7);
        let times = drain(&mut j);
        assert_eq!(times, vec![Time::ZERO, period]);
        assert!(times.iter().all(|t| !t.is_infinite()));
        assert_eq!(j.exhaustion(), Exhaustion::HorizonExceeded);

        // Jitter alone can push the last representable grid position
        // onto the sentinel.
        let mut j = Jittered::new(Time::from_ns(i64::MAX - 1), Time::from_ns(2), 2, 3);
        while j.next_arrival().is_some() {}
        assert!(
            matches!(
                j.exhaustion(),
                Exhaustion::Drained | Exhaustion::HorizonExceeded
            ),
            "either the draw stayed finite or the cut was typed"
        );

        // Bursty: the burst whose step overflows still emits in full at
        // its finite shared timestamp; the *next* burst reports the
        // horizon.
        let mut b = Bursty::new(period, 4, many, 11);
        let times = drain(&mut b);
        assert!(!times.is_empty());
        assert!(times.iter().all(|t| !t.is_infinite()), "no sentinel leaks");
        assert!(times.len() < many, "the grid cannot carry 1000 frames");
        assert_eq!(b.exhaustion(), Exhaustion::HorizonExceeded);
        assert_eq!(b.peek(), None);

        // Drained bursty streams stay typed as drained.
        let mut b = Bursty::new(Time::from_ns(100), 4, 16, 11);
        assert_eq!(drain(&mut b).len(), 16);
        assert_eq!(b.exhaustion(), Exhaustion::Drained);
    }

    /// `peek`/`next_arrival` agreement at the horizon for every grid
    /// source kind: interleaved peeking observes the same finite prefix
    /// and the same cut as plain draining.
    #[test]
    fn peek_and_next_agree_at_the_horizon() {
        let period = Time::from_ns(i64::MAX / 3);
        for mut src in [
            PatternSource::Periodic(Periodic::new(period, 64)),
            PatternSource::Jittered(Jittered::new(period, Time::from_ns(1 << 40), 64, 5)),
            PatternSource::Bursty(Bursty::new(period, 3, 64, 9)),
        ] {
            let mut reference = src.clone();
            let mut seen = Vec::new();
            loop {
                let p = src.peek();
                assert_eq!(src.peek(), p, "peek is idempotent at the horizon");
                let t = src.next_arrival();
                assert_eq!(t, p, "peek-then-next = next at the horizon");
                match t {
                    Some(t) => {
                        assert!(!t.is_infinite());
                        seen.push(t);
                    }
                    None => break,
                }
            }
            assert_eq!(seen, drain(&mut reference));
            assert_eq!(src.exhaustion(), Exhaustion::HorizonExceeded);
            assert_eq!(reference.exhaustion(), Exhaustion::HorizonExceeded);
        }
    }

    /// Interleaving peeks (including repeated ones) with consuming calls
    /// never changes what the consuming calls see, for every source kind.
    #[test]
    fn peek_is_transparent_for_every_kind() {
        let period = Time::from_ns(100);
        fn peeky<A: ArrivalSource>(mut src: A) -> Vec<Time> {
            let mut out = Vec::new();
            loop {
                let p = src.peek();
                assert_eq!(src.peek(), p, "peek is idempotent");
                let t = src.next_arrival();
                assert_eq!(t, p, "peek-then-next = next");
                match t {
                    Some(t) => out.push(t),
                    None => break out,
                }
            }
        }
        assert_eq!(
            peeky(Periodic::new(period, 8)),
            drain(Periodic::new(period, 8)),
        );
        assert_eq!(
            peeky(Jittered::new(period, Time::from_ns(30), 32, 7)),
            drain(Jittered::new(period, Time::from_ns(30), 32, 7)),
        );
        assert_eq!(
            peeky(Bursty::new(period, 4, 32, 3)),
            drain(Bursty::new(period, 4, 32, 3)),
        );
        assert_eq!(
            peeky(TraceReplay::new(vec![Time::ZERO, Time::from_ns(20)])),
            vec![Time::ZERO, Time::from_ns(20)],
        );
        let mut v = vec![Time::from_ns(10), Time::from_ns(40)].into_iter();
        assert_eq!(
            peeky(FnSource::new(move || v.next())),
            vec![Time::from_ns(10), Time::from_ns(40)],
        );
        assert_eq!(
            peeky(
                ArrivalSpec::Bursty { max_burst: 3 }
                    .build(period, 16, 5)
                    .unwrap()
            ),
            drain(Bursty::new(period, 3, 16, 5)),
        );
    }
}
