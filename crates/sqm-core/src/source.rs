//! Arrival sources — *where cycles come from* in live operation.
//!
//! The paper's evaluation runs a closed loop: cycle `c + 1` is available
//! the instant cycle `c` finishes (file encode), or at its period boundary
//! (live capture, [`CycleChaining::ArrivalClamped`]). A production
//! front-end is event-driven instead: frames arrive from capture hardware,
//! a network socket, or an upstream pipeline stage, at times the quality
//! manager does not control. An [`ArrivalSource`] abstracts that event
//! stream down to the one thing the execution layer needs — **the arrival
//! timestamp of the next cycle** — and [`crate::stream::StreamingRunner`]
//! pulls cycles from a source onto the shared [`crate::engine::Engine`].
//!
//! Built-in sources:
//!
//! * [`Periodic`] — one frame every `period`; with the `Block` overload
//!   policy this reproduces the closed loop *exactly* (both
//!   [`CycleChaining`] variants are pinned byte-identical by test).
//! * [`Jittered`] — periodic with bounded uniform jitter, deterministic
//!   per seed (the `rand` shim's seeded generator).
//! * [`Bursty`] — frames arrive in bursts at the nominal average rate,
//!   burst sizes drawn per seed — the pattern that exercises backlog
//!   bounds and overload policies.
//! * [`TraceReplay`] — recorded arrival timestamps, for replaying captured
//!   traffic byte-for-byte.
//! * [`FnSource`] — closure-backed, for tests and custom feeds.
//!
//! All sources are deterministic: the streaming layer inherits the fleet
//! layer's property that results depend only on specs and seeds, never on
//! host scheduling. Timestamps must be non-decreasing; every built-in
//! source guarantees it, and the runner clamps defensively.
//!
//! [`CycleChaining`]: crate::engine::CycleChaining
//! [`CycleChaining::ArrivalClamped`]: crate::engine::CycleChaining::ArrivalClamped

use crate::time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An event stream of cycle arrivals: yields the absolute arrival
/// timestamp of the next frame, or `None` when the stream ends.
///
/// Timestamps must be non-decreasing. Frame indices are implicit — the
/// `n`-th yielded timestamp is frame `n`, and a frame dropped by an
/// overload policy still consumes its index (replay stays aligned).
pub trait ArrivalSource {
    /// Arrival time of the next frame on the run's absolute time line, or
    /// `None` when the stream has ended.
    fn next_arrival(&mut self) -> Option<Time>;
}

impl<A: ArrivalSource + ?Sized> ArrivalSource for &mut A {
    fn next_arrival(&mut self) -> Option<Time> {
        (**self).next_arrival()
    }
}

/// One frame every `period`, starting at time zero — the closed loop's
/// arrival pattern, made explicit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Periodic {
    period: Time,
    frames: usize,
    next: usize,
}

impl Periodic {
    /// `frames` arrivals at `0, period, 2·period, …`.
    pub fn new(period: Time, frames: usize) -> Periodic {
        Periodic {
            period,
            frames,
            next: 0,
        }
    }
}

impl ArrivalSource for Periodic {
    fn next_arrival(&mut self) -> Option<Time> {
        if self.next == self.frames {
            return None;
        }
        let t = self.period.saturating_mul(self.next as i64);
        self.next += 1;
        Some(t)
    }
}

/// Periodic arrivals with bounded uniform jitter: frame `c` arrives at
/// `c · period + U(−jitter, +jitter)`, clamped non-negative and
/// non-decreasing. Deterministic per seed.
#[derive(Clone, Debug)]
pub struct Jittered {
    period: Time,
    jitter: Time,
    frames: usize,
    next: usize,
    floor: Time,
    rng: StdRng,
}

impl Jittered {
    /// `frames` arrivals around the `period` grid, jittered by at most
    /// `jitter` either way, seeded deterministically.
    pub fn new(period: Time, jitter: Time, frames: usize, seed: u64) -> Jittered {
        Jittered {
            period,
            jitter,
            frames,
            next: 0,
            floor: Time::ZERO,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ArrivalSource for Jittered {
    fn next_arrival(&mut self) -> Option<Time> {
        if self.next == self.frames {
            return None;
        }
        let nominal = self.period.saturating_mul(self.next as i64);
        let j = self.jitter.as_ns();
        let offset = if j > 0 { self.rng.gen_range(-j..=j) } else { 0 };
        let t = (nominal + Time::from_ns(offset)).max(self.floor);
        self.floor = t;
        self.next += 1;
        Some(t)
    }
}

/// Bursty arrivals at the nominal average rate: frames arrive in bursts of
/// `1..=max_burst` (drawn per seed) that share one timestamp; the next
/// burst follows after `burst_size · period`, so the long-run rate is one
/// frame per `period`. This is the pattern that fills backlog queues and
/// triggers overload policies.
#[derive(Clone, Debug)]
pub struct Bursty {
    period: Time,
    max_burst: usize,
    frames: usize,
    emitted: usize,
    burst_left: usize,
    burst_time: Time,
    next_time: Time,
    rng: StdRng,
}

impl Bursty {
    /// `frames` arrivals in bursts of up to `max_burst` (at least 1),
    /// averaging one frame per `period`, seeded deterministically.
    pub fn new(period: Time, max_burst: usize, frames: usize, seed: u64) -> Bursty {
        Bursty {
            period,
            max_burst: max_burst.max(1),
            frames,
            emitted: 0,
            burst_left: 0,
            burst_time: Time::ZERO,
            next_time: Time::ZERO,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ArrivalSource for Bursty {
    fn next_arrival(&mut self) -> Option<Time> {
        if self.emitted == self.frames {
            return None;
        }
        if self.burst_left == 0 {
            let size = self.rng.gen_range(1..=self.max_burst);
            self.burst_left = size;
            self.burst_time = self.next_time;
            self.next_time = self.burst_time + self.period.saturating_mul(size as i64);
        }
        self.burst_left -= 1;
        self.emitted += 1;
        Some(self.burst_time)
    }
}

/// Replays recorded arrival timestamps (sorted on construction so the
/// non-decreasing contract holds even for unordered captures).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceReplay {
    times: Vec<Time>,
    next: usize,
}

impl TraceReplay {
    /// A source replaying `times` in non-decreasing order.
    pub fn new(mut times: Vec<Time>) -> TraceReplay {
        times.sort_unstable();
        TraceReplay { times, next: 0 }
    }

    /// Number of timestamps left to yield.
    pub fn remaining(&self) -> usize {
        self.times.len() - self.next
    }
}

impl ArrivalSource for TraceReplay {
    fn next_arrival(&mut self) -> Option<Time> {
        let t = self.times.get(self.next).copied()?;
        self.next += 1;
        Some(t)
    }
}

/// Closure-backed source for tests and ad-hoc feeds. The closure's
/// timestamps must be non-decreasing.
pub struct FnSource<F>(pub F);

impl<F: FnMut() -> Option<Time>> ArrivalSource for FnSource<F> {
    fn next_arrival(&mut self) -> Option<Time> {
        (self.0)()
    }
}

/// A *description* of an arrival pattern — plain data a
/// [`crate::fleet::StreamSpec`] can carry across threads, turned into a
/// concrete source per stream via [`ArrivalSpec::build`] (the stream's
/// period, frame count and seed fill in the parameters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArrivalSpec {
    /// Closed loop: input pre-buffered, the engine's own
    /// [`crate::engine::CycleChaining`] drives timing (today's behaviour).
    #[default]
    Closed,
    /// [`Periodic`] arrivals at the stream's nominal period.
    Periodic,
    /// [`Jittered`] arrivals; jitter bound is `jitter_pct`% of the period.
    Jittered {
        /// Jitter bound as a percentage of the period (0–100).
        jitter_pct: u8,
    },
    /// [`Bursty`] arrivals with bursts of up to `max_burst` frames.
    Bursty {
        /// Largest burst size (clamped to at least 1).
        max_burst: u8,
    },
}

impl ArrivalSpec {
    /// Display label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ArrivalSpec::Closed => "closed",
            ArrivalSpec::Periodic => "periodic",
            ArrivalSpec::Jittered { .. } => "jittered",
            ArrivalSpec::Bursty { .. } => "bursty",
        }
    }

    /// Instantiate the pattern for one stream: `period` frames apart on
    /// average, `frames` arrivals, randomness seeded from `seed`. Returns
    /// `None` for [`ArrivalSpec::Closed`] (no event source — run the
    /// engine's closed loop).
    pub fn build(self, period: Time, frames: usize, seed: u64) -> Option<PatternSource> {
        match self {
            ArrivalSpec::Closed => None,
            ArrivalSpec::Periodic => Some(PatternSource::Periodic(Periodic::new(period, frames))),
            ArrivalSpec::Jittered { jitter_pct } => {
                let jitter = Time::from_ns(period.as_ns() * i64::from(jitter_pct) / 100);
                Some(PatternSource::Jittered(Jittered::new(
                    period, jitter, frames, seed,
                )))
            }
            ArrivalSpec::Bursty { max_burst } => Some(PatternSource::Bursty(Bursty::new(
                period,
                usize::from(max_burst),
                frames,
                seed,
            ))),
        }
    }
}

/// A concrete source built from an [`ArrivalSpec`] — an enum, not a trait
/// object, so fleet drive closures stay statically dispatched.
#[derive(Clone, Debug)]
pub enum PatternSource {
    /// Built from [`ArrivalSpec::Periodic`].
    Periodic(Periodic),
    /// Built from [`ArrivalSpec::Jittered`].
    Jittered(Jittered),
    /// Built from [`ArrivalSpec::Bursty`].
    Bursty(Bursty),
}

impl ArrivalSource for PatternSource {
    fn next_arrival(&mut self) -> Option<Time> {
        match self {
            PatternSource::Periodic(s) => s.next_arrival(),
            PatternSource::Jittered(s) => s.next_arrival(),
            PatternSource::Bursty(s) => s.next_arrival(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<A: ArrivalSource>(mut src: A) -> Vec<Time> {
        let mut out = Vec::new();
        while let Some(t) = src.next_arrival() {
            out.push(t);
        }
        out
    }

    #[test]
    fn periodic_hits_the_grid() {
        let times = drain(Periodic::new(Time::from_ns(100), 4));
        assert_eq!(
            times,
            vec![
                Time::ZERO,
                Time::from_ns(100),
                Time::from_ns(200),
                Time::from_ns(300)
            ]
        );
        assert_eq!(drain(Periodic::new(Time::from_ns(100), 0)), vec![]);
    }

    #[test]
    fn jittered_is_deterministic_monotone_and_bounded() {
        let a = drain(Jittered::new(Time::from_ns(100), Time::from_ns(30), 64, 7));
        let b = drain(Jittered::new(Time::from_ns(100), Time::from_ns(30), 64, 7));
        assert_eq!(a, b, "same seed, same arrivals");
        let c = drain(Jittered::new(Time::from_ns(100), Time::from_ns(30), 64, 8));
        assert_ne!(a, c, "different seed, different arrivals");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        assert!(a.iter().all(|t| *t >= Time::ZERO));
        for (i, t) in a.iter().enumerate() {
            let nominal = 100 * i as i64;
            assert!(
                (t.as_ns() - nominal).abs() <= 30 || t.as_ns() == a[i - 1].as_ns(),
                "frame {i} at {t:?} strays from {nominal}±30"
            );
        }
    }

    #[test]
    fn zero_jitter_is_periodic() {
        assert_eq!(
            drain(Jittered::new(Time::from_ns(100), Time::ZERO, 8, 1)),
            drain(Periodic::new(Time::from_ns(100), 8)),
        );
    }

    #[test]
    fn bursty_keeps_the_average_rate() {
        let times = drain(Bursty::new(Time::from_ns(100), 4, 256, 3));
        assert_eq!(times.len(), 256);
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        // Bursts share timestamps; the next burst is burst_size periods on.
        assert!(
            times.windows(2).any(|w| w[0] == w[1]),
            "max_burst 4 must produce at least one multi-frame burst"
        );
        // Average rate: the spacing budget equals frames · period exactly,
        // counted burst by burst, so the last burst's start is below
        // frames · period.
        assert!(times[255] < Time::from_ns(100 * 256));
        assert_eq!(
            drain(Bursty::new(Time::from_ns(100), 4, 256, 3)),
            times,
            "deterministic per seed"
        );
    }

    #[test]
    fn bursty_with_burst_one_is_periodic() {
        assert_eq!(
            drain(Bursty::new(Time::from_ns(100), 1, 8, 9)),
            drain(Periodic::new(Time::from_ns(100), 8)),
        );
    }

    #[test]
    fn trace_replay_sorts_and_replays() {
        let src = TraceReplay::new(vec![Time::from_ns(50), Time::ZERO, Time::from_ns(20)]);
        assert_eq!(src.remaining(), 3);
        assert_eq!(
            drain(src),
            vec![Time::ZERO, Time::from_ns(20), Time::from_ns(50)]
        );
    }

    #[test]
    fn arrival_spec_builds_matching_sources() {
        let period = Time::from_ns(100);
        assert!(ArrivalSpec::Closed.build(period, 4, 1).is_none());
        assert_eq!(
            drain(ArrivalSpec::Periodic.build(period, 4, 1).unwrap()),
            drain(Periodic::new(period, 4)),
        );
        assert_eq!(
            drain(
                ArrivalSpec::Jittered { jitter_pct: 25 }
                    .build(period, 16, 5)
                    .unwrap()
            ),
            drain(Jittered::new(period, Time::from_ns(25), 16, 5)),
        );
        assert_eq!(
            drain(
                ArrivalSpec::Bursty { max_burst: 3 }
                    .build(period, 16, 5)
                    .unwrap()
            ),
            drain(Bursty::new(period, 3, 16, 5)),
        );
        assert_eq!(ArrivalSpec::default(), ArrivalSpec::Closed);
        assert_eq!(ArrivalSpec::Bursty { max_burst: 3 }.label(), "bursty");
    }

    #[test]
    fn fn_source_yields_closure_values() {
        let mut v = vec![Time::from_ns(10), Time::ZERO].into_iter();
        let times = drain(FnSource(move || v.next()));
        assert_eq!(times, vec![Time::from_ns(10), Time::ZERO]);
    }
}
