//! Linear-constraint approximation of region tables — the "using linear
//! constraints to approximate control relaxation regions" direction of the
//! paper's conclusion.
//!
//! A region table stores one integer per `(state, quality)`. Over states,
//! those boundaries are often close to piecewise linear (the MPEG encoder
//! repeats the same three-action pattern per macroblock), so a handful of
//! line segments can replace thousands of integers. The approximation must
//! stay **conservative**:
//!
//! * an *upper* bound (`tD`, the latest admissible time) may only be
//!   approximated from **below** — pretending there is *less* slack than
//!   there is can lower quality, never break a deadline;
//! * a *lower* bound (a region's open floor, `tD(·, q+1)`) may only be
//!   approximated from **above** — shrinking the interval keeps every
//!   admitted `(state, t)` inside the true region.
//!
//! The compressor is a greedy feasible-corridor sweep: each segment starts
//! anchored at the true value and extends while an **integer** slope exists
//! keeping the line within `[v_i − tolerance, v_i]` (respectively
//! `[v_i, v_i + tolerance]`). Integer slopes and intercepts make the
//! evaluation exact — no floating-point rounding can cross the safe side.

use crate::quality::{Quality, QualitySet};
use crate::regions::QualityRegionTable;
use crate::time::Time;

/// Which side of the true curve the approximation must stay on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Approximate from below: `approx(i) ≤ v(i)` (for admissible-time
    /// upper bounds).
    Below,
    /// Approximate from above: `approx(i) ≥ v(i)` (for region floors).
    Above,
}

/// One line segment `value(i) = intercept + slope · (i − start)` covering
/// states `start..end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// First state covered.
    pub start: usize,
    /// One past the last state covered.
    pub end: usize,
    /// Value at `start`, in nanoseconds.
    pub intercept: i64,
    /// Slope in nanoseconds per state.
    pub slope: i64,
}

/// A compressed, conservatively-approximated column of boundary values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearApprox {
    side: Side,
    n: usize,
    segments: Vec<Segment>,
}

impl LinearApprox {
    /// Compress `values` (finite times) to the given `side` within
    /// `tolerance`. Infinite entries terminate segments and are stored as
    /// degenerate single-state segments reproducing the sentinel exactly.
    pub fn compress(values: &[Time], side: Side, tolerance: Time) -> LinearApprox {
        assert!(tolerance >= Time::ZERO);
        let tol = tolerance.as_ns();
        let n = values.len();
        let mut segments = Vec::new();
        let mut i = 0;
        while i < n {
            if values[i].is_infinite() {
                segments.push(Segment {
                    start: i,
                    end: i + 1,
                    intercept: values[i].as_ns(),
                    slope: 0,
                });
                i += 1;
                continue;
            }
            let anchor = values[i].as_ns();
            // Feasible integer-slope interval; extend greedily.
            let (mut lo, mut hi) = (i64::MIN, i64::MAX);
            let mut end = i + 1;
            while end < n && !values[end].is_infinite() {
                let dx = (end - i) as i64;
                let v = values[end].as_ns();
                // Corridor for the value at `end`:
                //   Below: anchor + m·dx ∈ [v − tol, v]
                //   Above: anchor + m·dx ∈ [v, v + tol]
                let (cor_lo, cor_hi) = match side {
                    Side::Below => (v - tol - anchor, v - anchor),
                    Side::Above => (v - anchor, v + tol - anchor),
                };
                // Integer slopes m with cor_lo ≤ m·dx ≤ cor_hi.
                let m_lo = div_ceil(cor_lo, dx);
                let m_hi = div_floor(cor_hi, dx);
                let new_lo = lo.max(m_lo);
                let new_hi = hi.min(m_hi);
                if new_lo > new_hi {
                    break;
                }
                lo = new_lo;
                hi = new_hi;
                end += 1;
            }
            // Any slope in [lo, hi] works; prefer the safest one (smallest
            // for Below, largest for Above) so mid-segment drift leans away
            // from the unsafe side. For single-state segments use slope 0.
            let slope = if end == i + 1 {
                0
            } else {
                match side {
                    Side::Below => lo,
                    Side::Above => hi,
                }
            };
            segments.push(Segment {
                start: i,
                end,
                intercept: anchor,
                slope,
            });
            i = end;
        }
        LinearApprox { side, n, segments }
    }

    /// Number of states covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when covering zero states.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The segments of the approximation.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The conservative side this approximation honours.
    #[inline]
    pub fn side(&self) -> Side {
        self.side
    }

    /// Evaluate the approximation at `state`. O(log #segments).
    ///
    /// # Panics
    /// If the approximation covers zero states or `state` is out of range.
    pub fn eval(&self, state: usize) -> Time {
        assert!(
            state < self.n,
            "state {state} out of range (n = {})",
            self.n
        );
        let idx = self
            .segments
            .partition_point(|s| s.end <= state)
            .min(self.segments.len() - 1);
        let s = &self.segments[idx];
        debug_assert!(s.start <= state && state < s.end);
        let base = Time::from_ns(s.intercept);
        if base.is_infinite() {
            base
        } else {
            Time::from_ns(s.intercept + s.slope * (state - s.start) as i64)
        }
    }

    /// Storage cost in integers (3 per segment: start, intercept, slope —
    /// `end` is implied by the next segment).
    pub fn integer_count(&self) -> usize {
        self.segments.len() * 3
    }
}

fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    -(-a).div_euclid(b)
}

/// A quality-region table whose per-quality boundary columns are replaced
/// by conservative linear approximations. `choose` may return a lower
/// quality than the exact table (by at most the compression tolerance's
/// worth of slack) but never a higher one — so it inherits the safety of
/// the exact table.
#[derive(Clone, Debug)]
pub struct ApproxRegionTable {
    qualities: QualitySet,
    n_states: usize,
    /// One under-approximated column per quality level.
    columns: Vec<LinearApprox>,
}

impl ApproxRegionTable {
    /// Compress every quality column of `exact` within `tolerance`.
    pub fn compress(exact: &QualityRegionTable, tolerance: Time) -> ApproxRegionTable {
        let n = exact.n_states();
        let columns = exact
            .qualities()
            .iter()
            .map(|q| {
                let col: Vec<Time> = (0..n).map(|i| exact.t_d(i, q)).collect();
                LinearApprox::compress(&col, Side::Below, tolerance)
            })
            .collect();
        ApproxRegionTable {
            qualities: exact.qualities(),
            n_states: n,
            columns,
        }
    }

    /// Approximated `tD(state, q)` — always `≤` the exact value.
    pub fn t_d(&self, state: usize, q: Quality) -> Time {
        self.columns[q.index()].eval(state)
    }

    /// The manager's choice over the approximated table: maximal `q` with
    /// `approx_tD(state, q) ≥ t`, plus probe count.
    pub fn choose(&self, state: usize, t: Time) -> (Option<Quality>, u64) {
        let mut probes = 0;
        for q in self.qualities.iter_desc() {
            probes += 1;
            if self.t_d(state, q) >= t {
                return (Some(q), probes);
            }
        }
        (None, probes)
    }

    /// Total storage in integers (3 per segment), the quantity to compare
    /// against the exact table's `|A|·|Q|`.
    pub fn integer_count(&self) -> usize {
        self.columns.iter().map(LinearApprox::integer_count).sum()
    }

    /// Number of states covered.
    pub fn n_states(&self) -> usize {
        self.n_states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile_regions;
    use crate::system::{ParameterizedSystem, SystemBuilder};

    fn times(ns: &[i64]) -> Vec<Time> {
        ns.iter().map(|&v| Time::from_ns(v)).collect()
    }

    #[test]
    fn exact_linear_data_compresses_to_one_segment() {
        let v = times(&[100, 90, 80, 70, 60]);
        let a = LinearApprox::compress(&v, Side::Below, Time::ZERO);
        assert_eq!(a.segments().len(), 1);
        assert_eq!(a.segments()[0].slope, -10);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(a.eval(i), x, "zero tolerance reproduces exactly");
        }
        assert_eq!(a.integer_count(), 3);
    }

    #[test]
    fn below_side_never_exceeds_truth() {
        let v = times(&[100, 97, 91, 88, 70, 66, 80, 79, 78]);
        for tol in [0, 3, 10, 100] {
            let a = LinearApprox::compress(&v, Side::Below, Time::from_ns(tol));
            for (i, &x) in v.iter().enumerate() {
                let approx = a.eval(i);
                assert!(approx <= x, "tol={tol}, i={i}: {approx:?} > {x:?}");
                assert!(
                    approx >= x - Time::from_ns(tol),
                    "tol={tol}, i={i}: lost more than tolerance"
                );
            }
        }
    }

    #[test]
    fn above_side_never_undercuts_truth() {
        let v = times(&[10, 14, 9, 22, 25, 31, 28]);
        for tol in [0, 2, 50] {
            let a = LinearApprox::compress(&v, Side::Above, Time::from_ns(tol));
            for (i, &x) in v.iter().enumerate() {
                let approx = a.eval(i);
                assert!(approx >= x);
                assert!(approx <= x + Time::from_ns(tol));
            }
        }
    }

    #[test]
    fn larger_tolerance_means_fewer_segments() {
        let v: Vec<Time> = (0..200)
            .map(|i| Time::from_ns(10_000 - 37 * i + (i % 7) * 11))
            .collect();
        let tight = LinearApprox::compress(&v, Side::Below, Time::ZERO);
        let loose = LinearApprox::compress(&v, Side::Below, Time::from_ns(100));
        assert!(loose.segments().len() < tight.segments().len());
        assert!(loose.segments().len() <= 3, "periodic data compresses well");
    }

    #[test]
    fn infinite_entries_are_preserved() {
        let v = vec![Time::from_ns(5), Time::INF, Time::from_ns(7)];
        let a = LinearApprox::compress(&v, Side::Below, Time::from_ns(2));
        assert_eq!(a.eval(0), Time::from_ns(5));
        assert_eq!(a.eval(1), Time::INF);
        assert_eq!(a.eval(2), Time::from_ns(7));
    }

    fn periodic_system(n: usize) -> ParameterizedSystem {
        let mut b = SystemBuilder::new(3);
        for i in 0..n {
            let bump = (i % 3) as i64;
            b = b.action(
                &format!("a{i}"),
                &[10 + bump, 20 + bump, 30 + bump],
                &[4 + bump, 9 + bump, 14 + bump],
            );
        }
        b.deadline_last(Time::from_ns(n as i64 * 35))
            .build()
            .unwrap()
    }

    #[test]
    fn approx_table_is_conservative_and_smaller() {
        let s = periodic_system(60);
        let exact = compile_regions(&s);
        let approx = ApproxRegionTable::compress(&exact, Time::from_ns(50));
        for state in 0..60 {
            for q in s.qualities().iter() {
                assert!(approx.t_d(state, q) <= exact.t_d(state, q));
            }
            // Conservative choice: never a higher quality than exact.
            for t_ns in (-100..2_000).step_by(53) {
                let t = Time::from_ns(t_ns);
                let (a, _) = approx.choose(state, t);
                let (e, _) = exact.choose(state, t);
                match (a, e) {
                    (Some(qa), Some(qe)) => assert!(qa <= qe),
                    (Some(_), None) => panic!("approx admitted an infeasible state"),
                    _ => {}
                }
            }
        }
        assert!(
            approx.integer_count() < exact.integer_count(),
            "compression should save space on periodic workloads: {} vs {}",
            approx.integer_count(),
            exact.integer_count()
        );
    }

    #[test]
    fn zero_tolerance_table_matches_exact_choices() {
        let s = periodic_system(30);
        let exact = compile_regions(&s);
        let approx = ApproxRegionTable::compress(&exact, Time::ZERO);
        for state in 0..30 {
            for t_ns in (-50..1_200).step_by(31) {
                let t = Time::from_ns(t_ns);
                assert_eq!(approx.choose(state, t).0, exact.choose(state, t).0);
            }
        }
    }
}
