//! Control relaxation regions `Rrq` (§3.3, Proposition 3).
//!
//! From a state inside `Rrq`, the Quality Manager is *guaranteed* to choose
//! quality `q` for the next `r` actions — whatever the actual execution
//! times turn out to be (they can range anywhere in `[0, Cwc]`). Control can
//! therefore be skipped for `r − 1` steps with bit-identical quality
//! assignments. Proposition 3 characterizes the region as one interval per
//! state:
//!
//! ```text
//! (s_i, t_i) ∈ Rrq ⟺ t_i ∈ ( tD(s_{i+r−1}, q+1),  tD,r(s_i, q) ]
//! tD,r(s_i, q) = min_{i ≤ j ≤ i+r−1} ( tD(s_j, q) − Cwc(a_{i+1}..a_j, q) )
//! ```
//!
//! (for `q = qmax` the lower bound is `−∞`). A [`RelaxationTable`] stores
//! both bounds for every `(state, q, r ∈ ρ)` — `2·|A|·|Q|·|ρ|` integers,
//! the paper's `99,876` for the MPEG encoder with `ρ = {1,10,20,30,40,50}`.
//!
//! Like [`crate::regions::QualityRegionTable`], the table is a view over a
//! shared [`TableArena`] — dense after compilation, pooled when loaded
//! from a fleet artifact — and the per-state rows (`|Q|·|ρ|` cells for each
//! of the lower and upper bounds) are the unit of content-addressed dedup.

use crate::arena::TableArena;
use crate::error::BuildError;
use crate::quality::{Quality, QualitySet};
use crate::regions::QualityRegionTable;
use crate::system::ParameterizedSystem;
use crate::time::Time;
use std::collections::VecDeque;

/// The menu `ρ` of relaxation step counts the compiler pre-computes.
///
/// Must be strictly increasing and contain `1` (so a relaxation lookup can
/// always fall back to "no relaxation", which is plain region membership).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepSet {
    steps: Vec<usize>,
}

impl StepSet {
    /// The paper's MPEG configuration: `ρ = {1, 10, 20, 30, 40, 50}`.
    pub fn paper_mpeg() -> StepSet {
        StepSet::new(vec![1, 10, 20, 30, 40, 50]).expect("static step set is valid")
    }

    /// Validate a step menu.
    pub fn new(steps: Vec<usize>) -> Result<StepSet, BuildError> {
        let strictly_increasing = steps.windows(2).all(|w| w[0] < w[1]);
        if steps.first() != Some(&1) || !strictly_increasing {
            return Err(BuildError::InvalidStepSet);
        }
        Ok(StepSet { steps })
    }

    /// The steps, ascending.
    #[inline]
    pub fn steps(&self) -> &[usize] {
        &self.steps
    }

    /// `|ρ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Never empty (contains 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The largest step.
    #[inline]
    pub fn max_step(&self) -> usize {
        *self.steps.last().expect("non-empty")
    }
}

/// Where a relaxation view's bound rows live inside its arena. Both the
/// lower and the upper block are addressed per state with rows of
/// `|Q|·|ρ|` cells, `(q, ri)`-major within the row.
#[derive(Clone, Copy, Debug)]
enum RelaxLayout {
    /// Two dense row-major blocks at `lower` and `upper`.
    Dense { lower: usize, upper: usize },
    /// Per-state directories of pool indices for each block.
    Pooled {
        dir_lo: usize,
        dir_up: usize,
        pool_lo: usize,
        pool_up: usize,
    },
}

/// Offsets describing a pooled relaxation view inside an arena, used by
/// [`RelaxationTable::pooled_view`] (fleet-artifact loading).
#[derive(Clone, Copy, Debug)]
pub struct PooledRelaxation {
    /// Offset of the `n_states` lower-bound directory cells.
    pub dir_lo: usize,
    /// Offset of the `n_states` upper-bound directory cells.
    pub dir_up: usize,
    /// Offset of the lower-bound row pool.
    pub pool_lo: usize,
    /// Offset of the upper-bound row pool.
    pub pool_up: usize,
    /// Rows in the lower-bound pool.
    pub pool_rows_lo: usize,
    /// Rows in the upper-bound pool.
    pub pool_rows_up: usize,
}

/// Pre-computed control relaxation intervals for every `(state, q, r ∈ ρ)`.
///
/// Equality is **semantic** (same shape and `ρ`, same bound rows), so a
/// pooled fleet view compares equal to the dense table it came from.
#[derive(Clone, Debug)]
pub struct RelaxationTable {
    n_states: usize,
    qualities: QualitySet,
    rho: StepSet,
    arena: TableArena,
    layout: RelaxLayout,
}

impl RelaxationTable {
    /// Build from a quality-region table. O(n·|Q|·|ρ|) using a monotone
    /// deque for the sliding-window minimum of `tD(s_j, q) − Wq[j]`.
    #[allow(clippy::needless_range_loop)] // window arithmetic over explicit indices
    pub fn compile(
        sys: &ParameterizedSystem,
        regions: &QualityRegionTable,
        rho: StepSet,
    ) -> RelaxationTable {
        let n = sys.n_actions();
        debug_assert_eq!(regions.n_states(), n);
        let qualities = sys.qualities();
        let nq = qualities.len();
        let nr = rho.len();
        let mut lower = vec![Time::INF; n * nq * nr];
        let mut upper = vec![Time::NEG_INF; n * nq * nr];

        for q in qualities.iter() {
            // u(j) = tD(s_j, q) − Wq[q][j]; then
            // tD,r(s_i, q) = Wq[q][i] + min_{i ≤ j ≤ i+r−1} u(j).
            let wq: Vec<i64> = (0..=n).map(|x| sys.prefix().wc_prefix(q, x)).collect();
            let u: Vec<Time> = (0..n)
                .map(|j| regions.t_d(j, q) - Time::from_ns(wq[j]))
                .collect();
            for (ri, &r) in rho.steps().iter().enumerate() {
                if r > n {
                    continue;
                }
                // Sliding minimum of u over windows [i, i+r-1].
                let mut deque: VecDeque<usize> = VecDeque::new();
                // Pre-fill the first window.
                for j in 0..r {
                    while deque.back().is_some_and(|&b| u[b] >= u[j]) {
                        deque.pop_back();
                    }
                    deque.push_back(j);
                }
                for i in 0..=(n - r) {
                    let j_min = *deque.front().expect("window non-empty");
                    let up = u[j_min] + Time::from_ns(wq[i]);
                    let lo = if q == qualities.max() {
                        Time::NEG_INF
                    } else {
                        regions.t_d(i + r - 1, q.up())
                    };
                    let idx = (i * nq + q.index()) * nr + ri;
                    lower[idx] = lo;
                    upper[idx] = up;
                    // Slide: drop index i, add index i + r.
                    if deque.front() == Some(&i) {
                        deque.pop_front();
                    }
                    let next = i + r;
                    if next < n {
                        while deque.back().is_some_and(|&b| u[b] >= u[next]) {
                            deque.pop_back();
                        }
                        deque.push_back(next);
                    }
                }
            }
        }
        RelaxationTable::from_dense_parts(n, qualities, rho, lower, upper)
    }

    /// Seal freshly built `lower`/`upper` blocks into one dense arena.
    fn from_dense_parts(
        n_states: usize,
        qualities: QualitySet,
        rho: StepSet,
        mut lower: Vec<Time>,
        upper: Vec<Time>,
    ) -> RelaxationTable {
        let upper_base = lower.len();
        lower.extend_from_slice(&upper);
        RelaxationTable {
            n_states,
            qualities,
            rho,
            arena: TableArena::from_cells(lower),
            layout: RelaxLayout::Dense {
                lower: 0,
                upper: upper_base,
            },
        }
    }

    /// A dense view over a shared arena: `n_states · |Q| · |ρ|` lower cells
    /// at `lower` and as many upper cells at `upper`. Returns `None` when
    /// either block exceeds the arena.
    pub fn dense_view(
        arena: TableArena,
        lower: usize,
        upper: usize,
        n_states: usize,
        qualities: QualitySet,
        rho: StepSet,
    ) -> Option<RelaxationTable> {
        let block = n_states
            .checked_mul(qualities.len())?
            .checked_mul(rho.len())?;
        let lo_end = lower.checked_add(block)?;
        let up_end = upper.checked_add(block)?;
        (lo_end <= arena.len() && up_end <= arena.len()).then_some(RelaxationTable {
            n_states,
            qualities,
            rho,
            arena,
            layout: RelaxLayout::Dense { lower, upper },
        })
    }

    /// A pooled view over a fleet arena (see [`PooledRelaxation`] for the
    /// offsets). Returns `None` when a directory or pool exceeds the arena
    /// or any directory cell is out of its pool's bounds.
    pub fn pooled_view(
        arena: TableArena,
        spec: PooledRelaxation,
        n_states: usize,
        qualities: QualitySet,
        rho: StepSet,
    ) -> Option<RelaxationTable> {
        let width = qualities.len().checked_mul(rho.len())?;
        let check_block = |dir: usize, pool: usize, pool_rows: usize| -> Option<()> {
            let dir_end = dir.checked_add(n_states)?;
            let pool_end = pool.checked_add(pool_rows.checked_mul(width)?)?;
            if dir_end > arena.len() || pool_end > arena.len() {
                return None;
            }
            let in_bounds = arena.cells()[dir..dir_end].iter().all(|&ix| {
                let ix = ix.as_ns();
                ix >= 0 && (ix as u64) < pool_rows as u64
            });
            in_bounds.then_some(())
        };
        check_block(spec.dir_lo, spec.pool_lo, spec.pool_rows_lo)?;
        check_block(spec.dir_up, spec.pool_up, spec.pool_rows_up)?;
        Some(RelaxationTable {
            n_states,
            qualities,
            rho,
            arena,
            layout: RelaxLayout::Pooled {
                dir_lo: spec.dir_lo,
                dir_up: spec.dir_up,
                pool_lo: spec.pool_lo,
                pool_up: spec.pool_up,
            },
        })
    }

    /// Number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// The step menu `ρ`.
    #[inline]
    pub fn rho(&self) -> &StepSet {
        &self.rho
    }

    /// The quality set.
    #[inline]
    pub fn qualities(&self) -> QualitySet {
        self.qualities
    }

    /// The backing arena this view reads from.
    #[inline]
    pub fn arena(&self) -> &TableArena {
        &self.arena
    }

    /// `true` when rows are directory indirections into shared pools (a
    /// fleet-artifact view).
    pub fn is_pooled(&self) -> bool {
        matches!(self.layout, RelaxLayout::Pooled { .. })
    }

    /// Cells per per-state bound row: `|Q| · |ρ|`.
    #[inline]
    fn row_width(&self) -> usize {
        self.qualities.len() * self.rho.len()
    }

    /// Start of the lower-bound row for `state`.
    #[inline]
    fn lower_start(&self, state: usize) -> usize {
        match self.layout {
            RelaxLayout::Dense { lower, .. } => lower + state * self.row_width(),
            RelaxLayout::Pooled {
                dir_lo, pool_lo, ..
            } => {
                // Directory cells are validated at view construction.
                pool_lo + self.arena.cells()[dir_lo + state].as_ns() as usize * self.row_width()
            }
        }
    }

    /// Start of the upper-bound row for `state`.
    #[inline]
    fn upper_start(&self, state: usize) -> usize {
        match self.layout {
            RelaxLayout::Dense { upper, .. } => upper + state * self.row_width(),
            RelaxLayout::Pooled {
                dir_up, pool_up, ..
            } => pool_up + self.arena.cells()[dir_up + state].as_ns() as usize * self.row_width(),
        }
    }

    /// The contiguous lower-bound row for `state` — `|Q|·|ρ|` cells,
    /// `(q, ri)`-major. The unit of fleet dedup and text serialization.
    #[inline]
    pub fn lower_row(&self, state: usize) -> &[Time] {
        let start = self.lower_start(state);
        &self.arena.cells()[start..start + self.row_width()]
    }

    /// The contiguous upper-bound row for `state` (see
    /// [`RelaxationTable::lower_row`]).
    #[inline]
    pub fn upper_row(&self, state: usize) -> &[Time] {
        let start = self.upper_start(state);
        &self.arena.cells()[start..start + self.row_width()]
    }

    /// The `(lower, upper]` interval of `Rrq` at `state` for the `ri`-th
    /// step of `ρ`. An empty interval (`lower ≥ upper` with
    /// `lower = +∞`) means the window overruns the cycle.
    pub fn bounds(&self, state: usize, q: Quality, ri: usize) -> (Time, Time) {
        let off = q.index() * self.rho.len() + ri;
        let cells = self.arena.cells();
        (
            cells[self.lower_start(state) + off],
            cells[self.upper_start(state) + off],
        )
    }

    /// The contiguous `(lower, upper)` interval rows for `(state, q)` over
    /// the whole step menu `ρ` — the cache-conscious view the relaxation
    /// probes work on. Slicing once hoists the
    /// `(state · |Q| + q) · |ρ|` offset arithmetic and the bounds checks
    /// out of the probe loop. Pooled views pay one extra directory load
    /// per bound; the probe loop is identical.
    #[inline]
    pub fn intervals(&self, state: usize, q: Quality) -> (&[Time], &[Time]) {
        let nr = self.rho.len();
        let off = q.index() * nr;
        let cells = self.arena.cells();
        let lo = self.lower_start(state) + off;
        let up = self.upper_start(state) + off;
        (&cells[lo..lo + nr], &cells[up..up + nr])
    }

    /// `true` when the intervals are nested over `ρ` at every `(state, q)`
    /// — lower bounds non-decreasing and upper bounds non-increasing in
    /// `ri`, so membership is prefix-monotone (`Rrq ⊆ Rr'q` for
    /// `r' ≤ r`). Every compiled table has this Proposition-3 structure;
    /// tables rebuilt through [`RelaxationTable::from_raw`] are only
    /// length-checked, so fast-path consumers `debug_assert!` this before
    /// trusting the hint walk of
    /// [`RelaxationTable::choose_relaxation_from`].
    pub fn nested_over_rho(&self) -> bool {
        (0..self.n_states).all(|state| {
            self.qualities.iter().all(|q| {
                let (lower, upper) = self.intervals(state, q);
                lower.windows(2).all(|w| w[0] <= w[1]) && upper.windows(2).all(|w| w[0] >= w[1])
            })
        })
    }

    /// Proposition 3 membership: `(s_state, t) ∈ Rrq` for `r = ρ[ri]`.
    pub fn contains(&self, state: usize, t: Time, q: Quality, ri: usize) -> bool {
        let (lo, up) = self.bounds(state, q, ri);
        lo < t && t <= up
    }

    /// The relaxed manager's second lookup: after region membership
    /// established quality `q` at `(state, t)`, find the largest `r ∈ ρ`
    /// whose relaxation interval contains `t`. Probes `ρ` from the largest
    /// step down; returns `(r, probes)`. Always succeeds with `r ≥ 1`
    /// because `R1q = Rq`.
    pub fn choose_relaxation(&self, state: usize, t: Time, q: Quality) -> (usize, u64) {
        let (lower, upper) = self.intervals(state, q);
        let mut probes = 0;
        for ri in (0..lower.len()).rev() {
            probes += 1;
            if lower[ri] < t && t <= upper[ri] {
                return (self.rho.steps()[ri], probes);
            }
        }
        // R1q = Rq and the caller established (state, t) ∈ Rq; numerical
        // consistency makes this unreachable, but degrade gracefully.
        (1, probes)
    }

    /// The probe count [`RelaxationTable::choose_relaxation`] charges for a
    /// given outcome, computed analytically: the top-down scan probes
    /// `|ρ| − ri` intervals to stop at index `ri`, or all `|ρ|` when none
    /// contains `t`. Like [`crate::regions::QualityRegionTable::scan_work`],
    /// this is the paper's abstract work model — independent of the
    /// host-side search strategy.
    #[inline]
    pub fn scan_work(&self, found_ri: Option<usize>) -> u64 {
        let nr = self.rho.len() as u64;
        match found_ri {
            Some(ri) => nr - ri as u64,
            None => nr,
        }
    }

    /// Incremental relaxation search: the index of the largest step in `ρ`
    /// whose interval contains `t`, resuming the probe from `hint`
    /// (typically the previously chosen index) instead of rescanning from
    /// the largest step. `None` means no interval contains `t` (the
    /// degraded `r = 1` case of [`RelaxationTable::choose_relaxation`]).
    ///
    /// Correct because the relaxation regions are *nested*:
    /// `Rrq ⊆ Rr'q` for `r' ≤ r` (the upper bound is a min over a growing
    /// window, the lower bound `tD(s_{i+r−1}, q+1)` is non-decreasing in
    /// `r`), so membership over `ρ` is true exactly for a prefix of
    /// indices and a local walk from any hint finds the largest member.
    ///
    /// Host-side work only: charge [`RelaxationTable::scan_work`] for the
    /// virtual accounting.
    ///
    /// # Examples
    ///
    /// ```
    /// use sqm_core::compiler::{compile_regions, compile_relaxation};
    /// use sqm_core::relaxation::StepSet;
    /// use sqm_core::system::SystemBuilder;
    /// use sqm_core::time::Time;
    ///
    /// let sys = SystemBuilder::new(2)
    ///     .action("a", &[10, 20], &[4, 9])
    ///     .action("b", &[12, 22], &[6, 11])
    ///     .action("c", &[8, 18], &[3, 8])
    ///     .deadline_last(Time::from_ns(80))
    ///     .build()
    ///     .unwrap();
    /// let regions = compile_regions(&sys);
    /// let relax = compile_relaxation(&sys, &regions, StepSet::new(vec![1, 2]).unwrap());
    /// for state in 0..3 {
    ///     for t in -10..90 {
    ///         let t = Time::from_ns(t);
    ///         if let (Some(q), _) = regions.choose(state, t) {
    ///             let (r, _) = relax.choose_relaxation(state, t, q);
    ///             for hint in 0..2 {
    ///                 let ri = relax.choose_relaxation_from(state, t, q, hint);
    ///                 assert_eq!(relax.rho().steps()[ri.unwrap()], r);
    ///             }
    ///         }
    ///     }
    /// }
    /// ```
    pub fn choose_relaxation_from(
        &self,
        state: usize,
        t: Time,
        q: Quality,
        hint: usize,
    ) -> Option<usize> {
        let (lower, upper) = self.intervals(state, q);
        let nr = lower.len();
        let mut ri = hint.min(nr - 1);
        if lower[ri] < t && t <= upper[ri] {
            while ri + 1 < nr && lower[ri + 1] < t && t <= upper[ri + 1] {
                ri += 1;
            }
            Some(ri)
        } else {
            while ri > 0 {
                ri -= 1;
                if lower[ri] < t && t <= upper[ri] {
                    return Some(ri);
                }
            }
            None
        }
    }

    /// A copy with every interval shifted by `delta` — exact for a uniform
    /// deadline shift, mirroring [`crate::regions::QualityRegionTable::shifted`]
    /// (both bounds are sums of `tD` values and deadline-independent
    /// worst-case terms). Sentinel bounds are preserved. The copy is
    /// always dense, whatever the source layout.
    pub fn shifted(&self, delta: Time) -> RelaxationTable {
        let shift = |t: Time| if t.is_infinite() { t } else { t + delta };
        let block = self.n_states * self.row_width();
        let mut lower = Vec::with_capacity(block);
        let mut upper = Vec::with_capacity(block);
        for state in 0..self.n_states {
            lower.extend(self.lower_row(state).iter().map(|&t| shift(t)));
            upper.extend(self.upper_row(state).iter().map(|&t| shift(t)));
        }
        RelaxationTable::from_dense_parts(
            self.n_states,
            self.qualities,
            self.rho.clone(),
            lower,
            upper,
        )
    }

    /// A dense copy of this table (identity in content for already-dense
    /// views).
    pub fn to_dense(&self) -> RelaxationTable {
        self.shifted(Time::ZERO)
    }

    /// Number of stored integers — `2·|A|·|Q|·|ρ|` (the paper's 99,876).
    pub fn integer_count(&self) -> usize {
        2 * self.n_states * self.row_width()
    }

    /// Memory footprint of the payload in bytes (dense equivalent; pooled
    /// views share their arena, see [`TableArena::byte_size`]).
    pub fn byte_size(&self) -> usize {
        self.integer_count() * std::mem::size_of::<Time>()
    }

    /// Raw bounds, for serialization: `(lower, upper)` slices.
    ///
    /// # Panics
    ///
    /// Panics on a pooled fleet view, whose rows are not contiguous —
    /// materialize with [`RelaxationTable::to_dense`] first. Every
    /// compiled or parsed table is dense.
    pub fn raw(&self) -> (&[Time], &[Time]) {
        match self.layout {
            RelaxLayout::Dense { lower, upper } => {
                let block = self.n_states * self.row_width();
                let cells = self.arena.cells();
                (&cells[lower..lower + block], &cells[upper..upper + block])
            }
            RelaxLayout::Pooled { .. } => {
                panic!("raw() on a pooled table view; use to_dense() or the row accessors")
            }
        }
    }

    /// Rebuild from raw parts (deserialization).
    pub fn from_raw(
        n_states: usize,
        qualities: QualitySet,
        rho: StepSet,
        lower: Vec<Time>,
        upper: Vec<Time>,
    ) -> Option<RelaxationTable> {
        let expect = n_states * qualities.len() * rho.len();
        (lower.len() == expect && upper.len() == expect)
            .then(|| RelaxationTable::from_dense_parts(n_states, qualities, rho, lower, upper))
    }
}

impl PartialEq for RelaxationTable {
    fn eq(&self, other: &RelaxationTable) -> bool {
        self.n_states == other.n_states
            && self.qualities == other.qualities
            && self.rho == other.rho
            && (0..self.n_states).all(|s| {
                self.lower_row(s) == other.lower_row(s) && self.upper_row(s) == other.upper_row(s)
            })
    }
}

impl Eq for RelaxationTable {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MixedPolicy;
    use crate::system::{ParameterizedSystem, SystemBuilder};

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(2)
            .action("a", &[10, 20], &[4, 9])
            .action("b", &[12, 22], &[6, 11])
            .action("c", &[8, 18], &[3, 8])
            .action("d", &[9, 21], &[5, 10])
            .action("e", &[11, 19], &[4, 9])
            .deadline_last(Time::from_ns(120))
            .build()
            .unwrap()
    }

    fn tables(s: &ParameterizedSystem) -> (QualityRegionTable, RelaxationTable) {
        let p = MixedPolicy::new(s);
        let regions = QualityRegionTable::from_policy(s, &p);
        let rho = StepSet::new(vec![1, 2, 3]).unwrap();
        let relax = RelaxationTable::compile(s, &regions, rho);
        (regions, relax)
    }

    #[test]
    fn step_set_validation() {
        assert!(StepSet::new(vec![]).is_err());
        assert!(StepSet::new(vec![2, 3]).is_err(), "must contain 1");
        assert!(StepSet::new(vec![1, 3, 3]).is_err(), "strictly increasing");
        assert!(StepSet::new(vec![1, 3, 2]).is_err());
        let rho = StepSet::new(vec![1, 10, 50]).unwrap();
        assert_eq!(rho.max_step(), 50);
        assert_eq!(rho.len(), 3);
        assert!(!rho.is_empty());
        assert_eq!(StepSet::paper_mpeg().steps(), &[1, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn r1_equals_quality_region() {
        let s = sys();
        let (regions, relax) = tables(&s);
        for state in 0..5 {
            for q in s.qualities().iter() {
                let (lo1, up1) = relax.bounds(state, q, 0);
                let (lo, up) = regions.bounds(state, q);
                assert_eq!((lo1, up1), (lo, up), "R1q = Rq at state {state} {q}");
            }
        }
    }

    #[test]
    fn upper_matches_brute_force_definition() {
        let s = sys();
        let (regions, relax) = tables(&s);
        let rho = relax.rho().clone();
        for state in 0..5usize {
            for q in s.qualities().iter() {
                for (ri, &r) in rho.steps().iter().enumerate() {
                    if state + r > 5 {
                        let (lo, up) = relax.bounds(state, q, ri);
                        assert!(lo >= up, "overrunning window is empty");
                        continue;
                    }
                    let brute = (state..state + r)
                        .map(|j| regions.t_d(j, q) - s.prefix().wc_range(state, j, q))
                        .fold(Time::INF, Time::min);
                    let (_, up) = relax.bounds(state, q, ri);
                    assert_eq!(up, brute, "tD,r at state {state} {q} r={r}");
                }
            }
        }
    }

    #[test]
    fn lower_is_next_region_boundary_at_window_end() {
        let s = sys();
        let (regions, relax) = tables(&s);
        let q0 = Quality::new(0);
        for state in 0..4usize {
            let (lo, _) = relax.bounds(state, q0, 1); // r = 2
            assert_eq!(lo, regions.t_d(state + 1, Quality::new(1)));
        }
        // qmax has an open lower bound.
        let (lo, _) = relax.bounds(0, Quality::new(1), 1);
        assert_eq!(lo, Time::NEG_INF);
    }

    #[test]
    fn relaxation_region_is_subset_of_quality_region() {
        let s = sys();
        let (regions, relax) = tables(&s);
        for state in 0..5 {
            for q in s.qualities().iter() {
                for ri in 0..3 {
                    for t_ns in -30..130 {
                        let t = Time::from_ns(t_ns);
                        if relax.contains(state, t, q, ri) {
                            assert!(
                                regions.contains(state, t, q),
                                "Rrq ⊆ Rq violated at state {state} {q} ri={ri} t={t}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn choose_relaxation_prefers_largest_step() {
        let s = sys();
        let (regions, relax) = tables(&s);
        for state in 0..5 {
            for t_ns in -30..130 {
                let t = Time::from_ns(t_ns);
                if let (Some(q), _) = regions.choose(state, t) {
                    let (r, probes) = relax.choose_relaxation(state, t, q);
                    assert!(r >= 1 && probes <= 3);
                    // Every larger step in ρ must NOT contain t.
                    for (ri, &step) in relax.rho().steps().iter().enumerate() {
                        if step > r {
                            assert!(!relax.contains(state, t, q, ri));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn relaxation_regions_are_nested_over_rho() {
        // The structural premise of the incremental search: membership over
        // ρ is true for a prefix of indices.
        let s = sys();
        let (_, relax) = tables(&s);
        for state in 0..5 {
            for q in s.qualities().iter() {
                for t_ns in -30..130 {
                    let t = Time::from_ns(t_ns);
                    let members: Vec<bool> =
                        (0..3).map(|ri| relax.contains(state, t, q, ri)).collect();
                    for ri in 1..3 {
                        assert!(
                            !members[ri] || members[ri - 1],
                            "Rrq ⊆ Rr'q violated at state {state} {q} t {t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hinted_relaxation_matches_naive_for_every_hint() {
        let s = sys();
        let (regions, relax) = tables(&s);
        for state in 0..5 {
            for t_ns in -30..130 {
                let t = Time::from_ns(t_ns);
                if let (Some(q), _) = regions.choose(state, t) {
                    let (r, probes) = relax.choose_relaxation(state, t, q);
                    for hint in 0..3 {
                        let found = relax.choose_relaxation_from(state, t, q, hint);
                        let fast_r = found.map_or(1, |ri| relax.rho().steps()[ri]);
                        assert_eq!(fast_r, r, "state {state} t {t} hint {hint}");
                        assert_eq!(relax.scan_work(found), probes);
                    }
                }
            }
        }
    }

    #[test]
    fn nesting_validator_accepts_compiled_rejects_broken() {
        let s = sys();
        let (_, relax) = tables(&s);
        assert!(relax.nested_over_rho());
        let (lo, up) = relax.raw();
        let mut up = up.to_vec();
        // Widen a larger step's interval past a smaller one's: not nested.
        up[2] = up[0] + Time::from_ns(1_000);
        let broken =
            RelaxationTable::from_raw(5, s.qualities(), relax.rho().clone(), lo.to_vec(), up)
                .unwrap();
        assert!(!broken.nested_over_rho());
    }

    #[test]
    fn interval_rows_match_indexed_bounds() {
        let s = sys();
        let (_, relax) = tables(&s);
        for state in 0..5 {
            for q in s.qualities().iter() {
                let (lower, upper) = relax.intervals(state, q);
                assert_eq!(lower.len(), 3);
                for ri in 0..3 {
                    assert_eq!((lower[ri], upper[ri]), relax.bounds(state, q, ri));
                }
            }
        }
    }

    #[test]
    fn shifted_equals_recompiled() {
        let s = sys(); // deadline 120 on the last action
        let (regions, relax) = tables(&s);
        for delta in [-10i64, 0, 25] {
            let shifted = relax.shifted(Time::from_ns(delta));
            // Recompile against the shifted system.
            let mut b = SystemBuilder::new(2);
            for (name, wc, av) in [
                ("a", [10, 20], [4, 9]),
                ("b", [12, 22], [6, 11]),
                ("c", [8, 18], [3, 8]),
                ("d", [9, 21], [5, 10]),
                ("e", [11, 19], [4, 9]),
            ] {
                b = b.action(name, &wc, &av);
            }
            let moved = b.deadline_last(Time::from_ns(120 + delta)).build().unwrap();
            let moved_regions = regions.shifted(Time::from_ns(delta));
            let recompiled = RelaxationTable::compile(
                &moved,
                &moved_regions,
                StepSet::new(vec![1, 2, 3]).unwrap(),
            );
            assert_eq!(shifted, recompiled, "delta {delta}");
        }
    }

    #[test]
    fn integer_count_formula() {
        let s = sys();
        let (_, relax) = tables(&s);
        assert_eq!(relax.integer_count(), 2 * 5 * 2 * 3);
        assert_eq!(relax.byte_size(), relax.integer_count() * 8);
    }

    #[test]
    fn from_raw_validates() {
        let s = sys();
        let (_, relax) = tables(&s);
        let (lo, up) = relax.raw();
        let rebuilt = RelaxationTable::from_raw(
            5,
            s.qualities(),
            relax.rho().clone(),
            lo.to_vec(),
            up.to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, relax);
        assert!(RelaxationTable::from_raw(
            5,
            s.qualities(),
            relax.rho().clone(),
            lo.to_vec(),
            vec![]
        )
        .is_none());
    }

    /// Build a pooled twin of a dense table and check every accessor and
    /// decision agrees.
    fn pooled_twin(relax: &RelaxationTable) -> RelaxationTable {
        use crate::arena::RowStore;
        let width = relax.qualities().len() * relax.rho().len();
        let mut lo_store = RowStore::new(width);
        let mut up_store = RowStore::new(width);
        let n = relax.n_states();
        let lo_dir: Vec<u32> = (0..n)
            .map(|s| lo_store.intern(relax.lower_row(s)))
            .collect();
        let up_dir: Vec<u32> = (0..n)
            .map(|s| up_store.intern(relax.upper_row(s)))
            .collect();
        let mut cells: Vec<Time> = lo_dir
            .iter()
            .chain(up_dir.iter())
            .map(|&ix| Time::from_ns(i64::from(ix)))
            .collect();
        let pool_lo = cells.len();
        cells.extend_from_slice(lo_store.pool());
        let pool_up = cells.len();
        cells.extend_from_slice(up_store.pool());
        RelaxationTable::pooled_view(
            TableArena::from_cells(cells),
            PooledRelaxation {
                dir_lo: 0,
                dir_up: n,
                pool_lo,
                pool_up,
                pool_rows_lo: lo_store.unique_rows(),
                pool_rows_up: up_store.unique_rows(),
            },
            n,
            relax.qualities(),
            relax.rho().clone(),
        )
        .expect("pooled twin must validate")
    }

    #[test]
    fn pooled_view_is_semantically_equal_to_dense() {
        let s = sys();
        let (regions, relax) = tables(&s);
        let pooled = pooled_twin(&relax);
        assert!(pooled.is_pooled() && !relax.is_pooled());
        assert_eq!(pooled, relax);
        assert_eq!(pooled.to_dense().raw(), relax.raw());
        for state in 0..5 {
            for t_ns in -30..130 {
                let t = Time::from_ns(t_ns);
                if let (Some(q), _) = regions.choose(state, t) {
                    assert_eq!(
                        pooled.choose_relaxation(state, t, q),
                        relax.choose_relaxation(state, t, q)
                    );
                    for hint in 0..3 {
                        assert_eq!(
                            pooled.choose_relaxation_from(state, t, q, hint),
                            relax.choose_relaxation_from(state, t, q, hint)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pooled_view_rejects_out_of_bounds_directory() {
        let s = sys();
        let (_, relax) = tables(&s);
        let good = pooled_twin(&relax);
        // Rebuild the same arena but with one directory cell past the pool.
        let mut cells = good.arena().cells().to_vec();
        cells[0] = Time::from_ns(i64::MAX);
        let arena = TableArena::from_cells(cells);
        let n = relax.n_states();
        let width = relax.qualities().len() * relax.rho().len();
        let spec = PooledRelaxation {
            dir_lo: 0,
            dir_up: n,
            pool_lo: 2 * n,
            pool_up: 2 * n + (good.arena().len() - 2 * n) / width / 2 * width,
            pool_rows_lo: 1,
            pool_rows_up: 1,
        };
        assert!(RelaxationTable::pooled_view(
            arena,
            spec,
            n,
            relax.qualities(),
            relax.rho().clone()
        )
        .is_none());
    }
}
