//! The controlled system `PS ‖ Γ`.
//!
//! The controller composes the application software with a Quality Manager
//! (the paper's Figure 2): before each action it invokes the manager (unless
//! a relaxation hold is active), **charges the manager's own execution time
//! to the clock**, runs the action with the chosen quality, and checks
//! deadlines. Charging QM overhead to the clock is the mechanism behind the
//! paper's Fig. 7: a cheaper manager leaves more budget for the application,
//! which the policy then converts into higher quality levels.
//!
//! The loop itself lives in [`crate::engine`]; this module keeps the
//! execution-time sources, the overhead model, and the trace-building
//! runner API: [`CycleRunner`] executes a single cycle, [`CyclicRunner`]
//! iterates cycles (video frames), carrying earliness/lateness across
//! cycle boundaries the way a streaming encoder does. Both are thin shells
//! over [`crate::engine::Engine`] — use the engine directly for
//! allocation-free or custom-sink runs, and
//! [`crate::stream::StreamingRunner`] when cycles arrive from an event
//! source ([`crate::source`]) rather than the closed loop.

use crate::action::ActionId;
use crate::engine::{CycleChaining, Engine, TraceSink};
use crate::manager::QualityManager;
use crate::quality::Quality;
use crate::system::ParameterizedSystem;
use crate::time::Time;
use crate::timing::TimeTable;
use crate::trace::{ActionRecord, CycleTrace, Trace};

/// Source of *actual* execution times `C(a, q) ≤ Cwc(a, q)` — the unknown
/// the paper's whole construction defends against. Implementations live in
/// `sqm-platform` (stochastic, load-driven); the constant sources here
/// cover tests and worst-case analyses.
pub trait ExecutionTimeSource {
    /// Actual execution time of `action` at quality `q` in cycle `cycle`.
    fn actual(&mut self, cycle: usize, action: ActionId, q: Quality) -> Time;
}

/// Deterministic source replaying the timing table itself: either the
/// average column (the "ideal" trajectory of the speed diagram) or the
/// worst-case column (the adversarial run safety is proved against).
#[derive(Clone, Copy, Debug)]
pub struct ConstantExec<'a> {
    table: &'a TimeTable,
    worst: bool,
}

impl<'a> ConstantExec<'a> {
    /// Every action takes exactly its average time.
    pub fn average(table: &'a TimeTable) -> ConstantExec<'a> {
        ConstantExec {
            table,
            worst: false,
        }
    }

    /// Every action takes exactly its worst-case time.
    pub fn worst_case(table: &'a TimeTable) -> ConstantExec<'a> {
        ConstantExec { table, worst: true }
    }
}

impl ExecutionTimeSource for ConstantExec<'_> {
    fn actual(&mut self, _cycle: usize, action: ActionId, q: Quality) -> Time {
        if self.worst {
            self.table.wc(action, q)
        } else {
            self.table.av(action, q)
        }
    }
}

/// Closure-backed source for tests and fault injection.
pub struct FnExec<F>(pub F);

impl<F: FnMut(usize, ActionId, Quality) -> Time> ExecutionTimeSource for FnExec<F> {
    fn actual(&mut self, cycle: usize, action: ActionId, q: Quality) -> Time {
        (self.0)(cycle, action, q)
    }
}

impl<E: ExecutionTimeSource + ?Sized> ExecutionTimeSource for &mut E {
    fn actual(&mut self, cycle: usize, action: ActionId, q: Quality) -> Time {
        (**self).actual(cycle, action, q)
    }
}

/// Converts a manager's abstract work units into clock time:
/// `cost(work) = base + per_unit · work`.
///
/// The base covers the fixed invocation cost (clock read, call, branch); the
/// per-unit slope covers one suffix-scan iteration (numeric manager) or one
/// table probe (symbolic managers). Calibrations for the virtual platform
/// live in `sqm-platform::overhead`; [`OverheadModel::ZERO`] disables
/// overhead accounting entirely (pure functional runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverheadModel {
    /// Fixed cost per QM invocation.
    pub base: Time,
    /// Cost per work unit.
    pub per_unit: Time,
}

impl OverheadModel {
    /// No overhead: decisions are free (functional testing).
    pub const ZERO: OverheadModel = OverheadModel {
        base: Time::ZERO,
        per_unit: Time::ZERO,
    };

    /// A model with the given base and slope.
    pub const fn new(base: Time, per_unit: Time) -> OverheadModel {
        OverheadModel { base, per_unit }
    }

    /// Clock cost of a decision that spent `work` units.
    #[inline]
    pub fn cost(&self, work: u64) -> Time {
        self.base + self.per_unit.saturating_mul(work as i64)
    }
}

/// Runs single cycles of `PS ‖ Γ`, materializing a [`CycleTrace`] per
/// cycle. A convenience shell over [`Engine`].
pub struct CycleRunner<'a, M: QualityManager> {
    engine: Engine<'a, M>,
}

impl<'a, M: QualityManager> CycleRunner<'a, M> {
    /// A runner composing `sys` with `manager` under an overhead model.
    pub fn new(sys: &'a ParameterizedSystem, manager: M, overhead: OverheadModel) -> Self {
        CycleRunner {
            engine: Engine::new(sys, manager, overhead),
        }
    }

    /// Access the wrapped manager.
    pub fn manager(&mut self) -> &mut M {
        self.engine.manager()
    }

    /// Execute one cycle starting at cycle-relative time `start` (negative
    /// when the previous cycle finished early), drawing actual times from
    /// `exec`.
    pub fn run_cycle<E: ExecutionTimeSource>(
        &mut self,
        cycle: usize,
        start: Time,
        exec: &mut E,
    ) -> CycleTrace {
        let mut collector = CycleCollector {
            trace: CycleTrace {
                cycle,
                start,
                records: Vec::with_capacity(self.engine.system().n_actions()),
            },
        };
        self.engine.run_cycle(cycle, start, exec, &mut collector);
        collector.trace
    }
}

/// Sink building a single [`CycleTrace`].
struct CycleCollector {
    trace: CycleTrace,
}

impl TraceSink for CycleCollector {
    fn record(&mut self, record: &ActionRecord) {
        self.trace.records.push(*record);
    }
}

/// Runs many consecutive cycles (frames), carrying time across cycle
/// boundaries. A convenience shell over [`Engine::run_cycles`].
pub struct CyclicRunner<'a, M: QualityManager> {
    engine: Engine<'a, M>,
    period: Time,
    chaining: CycleChaining,
}

impl<'a, M: QualityManager> CyclicRunner<'a, M> {
    /// A cyclic runner with the given per-cycle period (= per-cycle
    /// deadline spacing).
    pub fn new(
        sys: &'a ParameterizedSystem,
        manager: M,
        overhead: OverheadModel,
        period: Time,
    ) -> Self {
        CyclicRunner {
            engine: Engine::new(sys, manager, overhead),
            period,
            chaining: CycleChaining::WorkConserving,
        }
    }

    /// Clamp cycle starts at their period boundary (live-capture mode).
    pub fn with_arrival_clamping(mut self) -> Self {
        self.chaining = CycleChaining::ArrivalClamped;
        self
    }

    /// Run `cycles` consecutive cycles.
    pub fn run<E: ExecutionTimeSource>(&mut self, cycles: usize, exec: &mut E) -> Trace {
        let mut trace = Trace::default();
        self.engine
            .run_cycles(cycles, self.period, self.chaining, exec, &mut trace);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::NumericManager;
    use crate::policy::{MixedPolicy, Policy};
    use crate::system::SystemBuilder;

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(3)
            .action("a", &[10, 25, 40], &[4, 9, 14])
            .action("b", &[12, 22, 35], &[6, 11, 17])
            .action("c", &[8, 18, 28], &[3, 8, 12])
            .action("d", &[15, 24, 33], &[7, 12, 16])
            .deadline_last(Time::from_ns(130))
            .build()
            .unwrap()
    }

    #[test]
    fn average_run_meets_deadline_at_high_quality() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let m = NumericManager::new(&s, &p);
        let mut runner = CycleRunner::new(&s, m, OverheadModel::ZERO);
        let trace = runner.run_cycle(0, Time::ZERO, &mut ConstantExec::average(s.table()));
        assert_eq!(trace.records.len(), 4);
        assert_eq!(trace.stats().misses, 0);
        // With averages well below the deadline the manager should reach
        // above-minimum quality.
        assert!(trace.stats().avg_quality > 0.0);
    }

    #[test]
    fn worst_case_run_is_safe() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let m = NumericManager::new(&s, &p);
        let mut runner = CycleRunner::new(&s, m, OverheadModel::ZERO);
        let trace = runner.run_cycle(0, Time::ZERO, &mut ConstantExec::worst_case(s.table()));
        assert_eq!(
            trace.stats().misses,
            0,
            "mixed policy must absorb worst case"
        );
    }

    #[test]
    fn overhead_is_charged_to_the_clock() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let free = CycleRunner::new(&s, NumericManager::new(&s, &p), OverheadModel::ZERO)
            .run_cycle(0, Time::ZERO, &mut ConstantExec::average(s.table()));
        let costly = CycleRunner::new(
            &s,
            NumericManager::new(&s, &p),
            OverheadModel::new(Time::from_ns(3), Time::from_ns(1)),
        )
        .run_cycle(0, Time::ZERO, &mut ConstantExec::average(s.table()));
        let free_end = free.records.last().unwrap().end;
        let costly_end = costly.records.last().unwrap().end;
        assert!(costly_end > free_end);
        assert!(costly.stats().qm_overhead > Time::ZERO);
        assert!(costly.stats().overhead_ratio > 0.0);
    }

    #[test]
    fn decision_quality_satisfies_policy_at_decision_time() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let m = NumericManager::new(&s, &p);
        let mut runner = CycleRunner::new(&s, m, OverheadModel::ZERO);
        let trace = runner.run_cycle(0, Time::ZERO, &mut ConstantExec::worst_case(s.table()));
        let mut t = Time::ZERO;
        for r in &trace.records {
            assert!(
                p.t_d(r.action, r.quality) >= t,
                "chosen quality feasible at decision time"
            );
            t = r.end;
        }
    }

    #[test]
    fn fn_exec_and_misses() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let m = NumericManager::new(&s, &p);
        let mut runner = CycleRunner::new(&s, m, OverheadModel::ZERO);
        // Violate the worst-case contract: actual times above Cwc. The
        // controller must *detect* the resulting miss.
        let mut exec = FnExec(|_c, _a, _q| Time::from_ns(100));
        let trace = runner.run_cycle(0, Time::ZERO, &mut exec);
        assert!(
            trace.stats().misses > 0,
            "contract violation must surface as a miss"
        );
    }

    #[test]
    fn cyclic_runner_carries_earliness() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let m = NumericManager::new(&s, &p);
        let mut runner = CyclicRunner::new(&s, m, OverheadModel::ZERO, Time::from_ns(130));
        let trace = runner.run(3, &mut ConstantExec::average(s.table()));
        assert_eq!(trace.cycles.len(), 3);
        // Average times are far below the period, so later cycles start
        // earlier and earlier (negative start).
        assert!(trace.cycles[1].start < Time::ZERO);
        assert!(trace.cycles[2].start <= trace.cycles[1].start);
        assert_eq!(trace.total_misses(), 0);
    }

    #[test]
    fn arrival_clamping_pins_start_at_zero() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let m = NumericManager::new(&s, &p);
        let mut runner = CyclicRunner::new(&s, m, OverheadModel::ZERO, Time::from_ns(130))
            .with_arrival_clamping();
        let trace = runner.run(3, &mut ConstantExec::average(s.table()));
        for c in &trace.cycles {
            assert_eq!(c.start, Time::ZERO);
        }
    }

    /// A manager that always demands an oversized hold: the runner must
    /// clamp it to the remaining actions and still terminate.
    struct GreedyHold;
    impl crate::manager::QualityManager for GreedyHold {
        fn decide(&mut self, _state: usize, _t: Time) -> crate::manager::Decision {
            crate::manager::Decision {
                quality: crate::quality::Quality::MIN,
                hold: usize::MAX,
                work: 1,
                infeasible: false,
            }
        }
        fn name(&self) -> &'static str {
            "greedy-hold"
        }
    }

    #[test]
    fn oversized_holds_are_clamped() {
        let s = sys();
        let mut runner = CycleRunner::new(&s, GreedyHold, OverheadModel::ZERO);
        let trace = runner.run_cycle(0, Time::ZERO, &mut ConstantExec::average(s.table()));
        assert_eq!(trace.records.len(), 4);
        assert_eq!(trace.records.iter().filter(|r| r.decided).count(), 1);
        assert!(trace.records[1..].iter().all(|r| !r.decided));
    }

    /// A manager returning a zero hold must still make progress (treated
    /// as hold = 1).
    struct ZeroHold;
    impl crate::manager::QualityManager for ZeroHold {
        fn decide(&mut self, _state: usize, _t: Time) -> crate::manager::Decision {
            crate::manager::Decision {
                quality: crate::quality::Quality::MIN,
                hold: 0,
                work: 1,
                infeasible: false,
            }
        }
        fn name(&self) -> &'static str {
            "zero-hold"
        }
    }

    #[test]
    fn zero_hold_still_progresses() {
        let s = sys();
        let mut runner = CycleRunner::new(&s, ZeroHold, OverheadModel::ZERO);
        let trace = runner.run_cycle(0, Time::ZERO, &mut ConstantExec::average(s.table()));
        assert_eq!(trace.records.len(), 4);
        assert!(trace.records.iter().all(|r| r.decided));
    }

    #[test]
    fn intermediate_deadline_miss_is_attributed_to_the_right_action() {
        let s = SystemBuilder::new(1)
            .action("a", &[100], &[50])
            .action("b", &[100], &[50])
            .deadline(0, Time::from_ns(100))
            .deadline_last(Time::from_ns(400))
            .build()
            .unwrap();
        let p = MixedPolicy::new(&s);
        let mut runner = CycleRunner::new(&s, NumericManager::new(&s, &p), OverheadModel::ZERO);
        // Violate the contract on the first action only.
        let mut exec = FnExec(|_c, a: usize, _q| Time::from_ns(if a == 0 { 150 } else { 10 }));
        let trace = runner.run_cycle(0, Time::ZERO, &mut exec);
        assert!(trace.records[0].missed_deadline);
        assert!(
            !trace.records[1].missed_deadline,
            "the final deadline still held"
        );
    }

    #[test]
    fn overhead_model_cost() {
        let m = OverheadModel::new(Time::from_ns(100), Time::from_ns(7));
        assert_eq!(m.cost(0), Time::from_ns(100));
        assert_eq!(m.cost(10), Time::from_ns(170));
        assert_eq!(OverheadModel::ZERO.cost(1000), Time::ZERO);
    }
}
