//! The monomorphized execution engine — the one decide → charge-overhead →
//! execute → check-deadline loop every runner in the workspace shares.
//!
//! Before this module existed, that loop was duplicated across the
//! single-cycle runner, the cyclic runner, the multi-task examples, and the
//! bench harness. It is the system's hot path: the paper's whole argument
//! (Fig. 7/8) is that cheap quality management leaves more budget for the
//! application, so the loop itself must not spend time on bookkeeping. The
//! engine therefore is:
//!
//! * **statically dispatched** — generic over `M:`[`QualityManager`] and
//!   `X:`[`ExecutionTimeSource`]; every manager/source pairing
//!   monomorphizes to straight-line code. No `Box<dyn …>` anywhere.
//! * **allocation-free on the hot path** — the loop writes
//!   [`ActionRecord`]s through a [`TraceSink`], and the built-in sinks
//!   either aggregate in place ([`CycleSummary`] / [`RunSummary`], plain
//!   `Copy` structs) or append to **caller-provided buffers**
//!   ([`RecordBuffer`]) whose capacity is reused across cycles. Recording
//!   can be compiled out entirely with [`NullSink`].
//!
//! The legacy [`crate::controller::CycleRunner`] /
//! [`crate::controller::CyclicRunner`] API, the multi-task runner
//! ([`crate::multi::MultiTaskRunner`]) and the `sqm-bench` harness are all
//! thin shells over this module.

use crate::controller::{ExecutionTimeSource, OverheadModel};
use crate::manager::QualityManager;
use crate::quality::Quality;
use crate::system::ParameterizedSystem;
use crate::time::Time;
use crate::trace::{ActionRecord, CycleTrace, Trace};

/// Receives the engine's per-action records and cycle boundaries.
///
/// Sinks let one monomorphized loop serve every consumer: full traces,
/// caller-owned buffers, pure aggregation, or nothing at all. All methods
/// default to no-ops so stat-only sinks implement exactly what they need.
pub trait TraceSink {
    /// Whether this sink consumes per-action records. Aggregation-only
    /// sinks ([`NullSink`]) set this to `false`, and the engine's
    /// monomorphized loop then skips [`ActionRecord`] construction
    /// entirely — the summary-only path compiles down to pure arithmetic.
    const WANTS_RECORDS: bool = true;

    /// A cycle is starting at cycle-relative time `start`;
    /// `expected_actions` is the system's action count, so recording sinks
    /// can reserve capacity up front.
    fn begin_cycle(&mut self, _cycle: usize, _start: Time, _expected_actions: usize) {}

    /// One action finished executing.
    fn record(&mut self, _record: &ActionRecord) {}

    /// The cycle that most recently began has finished.
    fn end_cycle(&mut self, _summary: &CycleSummary) {}
}

/// Discards all records; the engine still returns summaries. The fastest
/// path — used by benches measuring pure decide/execute cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    const WANTS_RECORDS: bool = false;
}

/// Appends records to a caller-provided buffer. The engine never clears
/// the buffer — the caller owns its lifecycle and can reuse its capacity
/// across cycles or runs (zero steady-state allocation).
#[derive(Debug)]
pub struct RecordBuffer<'b> {
    buf: &'b mut Vec<ActionRecord>,
}

impl<'b> RecordBuffer<'b> {
    /// Wrap `buf`; records are appended in execution order.
    pub fn new(buf: &'b mut Vec<ActionRecord>) -> RecordBuffer<'b> {
        RecordBuffer { buf }
    }
}

impl TraceSink for RecordBuffer<'_> {
    fn record(&mut self, record: &ActionRecord) {
        self.buf.push(*record);
    }
}

impl TraceSink for Trace {
    fn begin_cycle(&mut self, cycle: usize, start: Time, expected_actions: usize) {
        self.cycles.push(CycleTrace {
            cycle,
            start,
            records: Vec::with_capacity(expected_actions),
        });
    }

    fn record(&mut self, record: &ActionRecord) {
        self.cycles
            .last_mut()
            .expect("begin_cycle precedes record")
            .records
            .push(*record);
    }
}

impl<S: TraceSink> TraceSink for &mut S {
    const WANTS_RECORDS: bool = S::WANTS_RECORDS;

    fn begin_cycle(&mut self, cycle: usize, start: Time, expected_actions: usize) {
        (**self).begin_cycle(cycle, start, expected_actions);
    }

    fn record(&mut self, record: &ActionRecord) {
        (**self).record(record);
    }

    fn end_cycle(&mut self, summary: &CycleSummary) {
        (**self).end_cycle(summary);
    }
}

/// Tees one record stream into two sinks.
#[derive(Debug)]
pub struct Tee<'a, A, B>(pub &'a mut A, pub &'a mut B);

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<'_, A, B> {
    const WANTS_RECORDS: bool = A::WANTS_RECORDS || B::WANTS_RECORDS;

    fn begin_cycle(&mut self, cycle: usize, start: Time, expected_actions: usize) {
        self.0.begin_cycle(cycle, start, expected_actions);
        self.1.begin_cycle(cycle, start, expected_actions);
    }

    fn record(&mut self, record: &ActionRecord) {
        self.0.record(record);
        self.1.record(record);
    }

    fn end_cycle(&mut self, summary: &CycleSummary) {
        self.0.end_cycle(summary);
        self.1.end_cycle(summary);
    }
}

/// In-place aggregates of one cycle — everything
/// [`crate::trace::CycleStats`] reports, computed without storing records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleSummary {
    /// Cycle index.
    pub cycle: usize,
    /// Cycle-relative start time.
    pub start: Time,
    /// Completion time of the last action.
    pub end: Time,
    /// Actions executed.
    pub actions: usize,
    /// Quality-manager invocations.
    pub qm_calls: usize,
    /// Work units the manager reported across the cycle.
    pub qm_work: u64,
    /// Clock time charged for manager invocations.
    pub qm_overhead: Time,
    /// Total action execution time.
    pub busy: Time,
    /// Sum of chosen quality indices (for averages).
    pub quality_sum: u64,
    /// Lowest quality level used (`Quality::MIN` when no actions ran).
    pub min_quality: Quality,
    /// Highest quality level used.
    pub max_quality: Quality,
    /// Quality switches between consecutive actions.
    pub switches: usize,
    /// Deadline misses.
    pub misses: usize,
    /// Infeasible decisions.
    pub infeasible: usize,
}

impl CycleSummary {
    /// An empty summary for cycle `cycle` starting (cycle-relative) at
    /// `start`: no actions yet, `end == start`, quality extrema at their
    /// fold identities.
    pub fn new(cycle: usize, start: Time) -> CycleSummary {
        CycleSummary {
            cycle,
            start,
            end: start,
            actions: 0,
            qm_calls: 0,
            qm_work: 0,
            qm_overhead: Time::ZERO,
            busy: Time::ZERO,
            quality_sum: 0,
            min_quality: Quality::new(u8::MAX),
            max_quality: Quality::MIN,
            switches: 0,
            misses: 0,
            infeasible: 0,
        }
    }

    /// Mean quality level over the cycle's actions.
    pub fn avg_quality(&self) -> f64 {
        mean_quality(self.quality_sum, self.actions)
    }

    /// `qm_overhead / (qm_overhead + busy)` — the paper's §4.2 metric.
    pub fn overhead_ratio(&self) -> f64 {
        overhead_fraction(self.qm_overhead, self.busy)
    }
}

/// Mean quality index over `actions` executed actions (0 for empty runs).
pub fn mean_quality(quality_sum: u64, actions: usize) -> f64 {
    quality_sum as f64 / actions.max(1) as f64
}

/// `qm_overhead / (qm_overhead + busy)`, the paper's §4.2 overhead metric
/// (0 when nothing ran). The single definition shared by every summary
/// type in the workspace.
pub fn overhead_fraction(qm_overhead: Time, busy: Time) -> f64 {
    let total = qm_overhead + busy;
    if total > Time::ZERO {
        qm_overhead.as_ns() as f64 / total.as_ns() as f64
    } else {
        0.0
    }
}

/// Whole-run aggregates — the zero-allocation counterpart of walking a
/// [`Trace`] after the fact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Cycles executed.
    pub cycles: usize,
    /// Actions executed.
    pub actions: usize,
    /// Quality-manager invocations.
    pub qm_calls: usize,
    /// Total manager work units.
    pub qm_work: u64,
    /// Total clock time charged to the manager.
    pub qm_overhead: Time,
    /// Total action execution time.
    pub busy: Time,
    /// Sum of chosen quality indices.
    pub quality_sum: u64,
    /// Total deadline misses.
    pub misses: usize,
    /// Total infeasible decisions.
    pub infeasible: usize,
    /// Latest cycle-relative completion time over the run's cycles
    /// ([`Time::ZERO`] for empty runs).
    ///
    /// Under work-conserving earliness a *later* cycle can finish at an
    /// *earlier* relative time (even a negative one — and with prefetch
    /// ahead of late first arrivals, *every* end can be negative), so
    /// every reduction path — [`RunSummary::absorb`],
    /// [`RunSummary::merge`], [`crate::trace::Trace::run_summary`] —
    /// seeds from the first non-empty contribution and takes the `max`
    /// from there, never the final cycle's value and never the empty
    /// default. One semantics for serial, trace-replay and fleet-merge
    /// alike.
    pub last_end: Time,
}

impl RunSummary {
    /// Fold one cycle's summary into the run.
    pub fn absorb(&mut self, c: &CycleSummary) {
        self.cycles += 1;
        self.actions += c.actions;
        self.qm_calls += c.qm_calls;
        self.qm_work += c.qm_work;
        self.qm_overhead += c.qm_overhead;
        self.busy += c.busy;
        self.quality_sum += c.quality_sum;
        self.misses += c.misses;
        self.infeasible += c.infeasible;
        // `max`, not overwrite: an early-finishing final cycle (end ≤
        // start, possible under work-conserving earliness) must not drag
        // `last_end` backwards — `merge` takes the max the same way, and
        // the serial and fleet-merge reductions have to agree
        // byte-for-byte. The first cycle *seeds* rather than maxes so the
        // empty-run default of zero cannot mask all-negative ends.
        self.last_end = if self.cycles == 1 {
            c.end
        } else {
            self.last_end.max(c.end)
        };
    }

    /// Fold another run's aggregates into this one — the reduction step of
    /// sharded execution ([`crate::fleet`]): each worker accumulates its
    /// own `RunSummary`, and the fleet merges them in a deterministic
    /// order afterwards.
    ///
    /// All counters add; `last_end` keeps the later of the two completion
    /// times (the merged runs are concurrent, not consecutive), with an
    /// empty side contributing nothing — so the default value is a true
    /// merge identity even for runs whose every end is negative.
    pub fn merge(&mut self, other: &RunSummary) {
        self.last_end = if self.cycles == 0 {
            other.last_end
        } else if other.cycles == 0 {
            self.last_end
        } else {
            self.last_end.max(other.last_end)
        };
        self.cycles += other.cycles;
        self.actions += other.actions;
        self.qm_calls += other.qm_calls;
        self.qm_work += other.qm_work;
        self.qm_overhead += other.qm_overhead;
        self.busy += other.busy;
        self.quality_sum += other.quality_sum;
        self.misses += other.misses;
        self.infeasible += other.infeasible;
    }

    /// Mean quality level over all actions.
    pub fn avg_quality(&self) -> f64 {
        mean_quality(self.quality_sum, self.actions)
    }

    /// Total QM overhead ratio (§4.2: 5.7 % numeric, 1.9 % regions,
    /// <1.1 % relaxation).
    pub fn overhead_ratio(&self) -> f64 {
        overhead_fraction(self.qm_overhead, self.busy)
    }
}

/// How consecutive cycles chain onto the shared clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleChaining {
    /// Streaming (file encode): earliness carries over — a cycle may start
    /// before its period boundary and bank the extra budget.
    WorkConserving,
    /// Live capture: input for cycle `c` only exists from `c · period`, so
    /// starts clamp at 0 cycle-relative.
    ArrivalClamped,
}

/// The shared engine: composes `PS ‖ Γ` under an overhead model and runs
/// cycles against any execution-time source, streaming records into any
/// sink. Construction is cheap; all state lives in the manager.
///
/// # Examples
///
/// One decide → charge-overhead → execute → check-deadline run over a
/// three-action system, aggregating in place (no trace materialized):
///
/// ```
/// use sqm_core::controller::{ConstantExec, OverheadModel};
/// use sqm_core::engine::{CycleChaining, Engine, NullSink};
/// use sqm_core::manager::NumericManager;
/// use sqm_core::policy::MixedPolicy;
/// use sqm_core::system::SystemBuilder;
/// use sqm_core::time::Time;
///
/// let sys = SystemBuilder::new(2)
///     .action("decode", &[100, 200], &[60, 120])
///     .action("transform", &[150, 300], &[90, 180])
///     .action("render", &[100, 200], &[60, 120])
///     .deadline_last(Time::from_ns(700))
///     .build()
///     .unwrap();
/// let policy = MixedPolicy::new(&sys);
/// let manager = NumericManager::new(&sys, &policy);
///
/// let mut engine = Engine::new(&sys, manager, OverheadModel::ZERO);
/// let run = engine.run_cycles(
///     10,
///     Time::from_ns(700),
///     CycleChaining::WorkConserving,
///     &mut ConstantExec::average(sys.table()),
///     &mut NullSink,
/// );
///
/// assert_eq!(run.cycles, 10);
/// assert_eq!(run.actions, 30);
/// assert_eq!(run.misses, 0, "the controller never misses a deadline");
/// ```
pub struct Engine<'a, M: QualityManager> {
    sys: &'a ParameterizedSystem,
    manager: M,
    overhead: OverheadModel,
}

impl<'a, M: QualityManager> Engine<'a, M> {
    /// An engine composing `sys` with `manager` under `overhead`.
    pub fn new(sys: &'a ParameterizedSystem, manager: M, overhead: OverheadModel) -> Self {
        Engine {
            sys,
            manager,
            overhead,
        }
    }

    /// The controlled system.
    pub fn system(&self) -> &'a ParameterizedSystem {
        self.sys
    }

    /// Access the wrapped manager.
    pub fn manager(&mut self) -> &mut M {
        &mut self.manager
    }

    /// Recover the manager (e.g. to rewrap it differently).
    pub fn into_manager(self) -> M {
        self.manager
    }

    /// Execute one cycle starting at cycle-relative time `start` (negative
    /// when the previous cycle finished early). Actual times come from
    /// `exec`; records stream into `sink`. Returns the cycle's aggregates.
    ///
    /// This is *the* hot loop: decide, charge the decision's cost to the
    /// clock, then execute the decision's whole `hold` span through a tight
    /// inner loop. Everything constant across the span — the chosen
    /// quality, the switch test, the quality-sum/min/max bookkeeping, the
    /// decision's work and overhead — is folded in **once per decision**,
    /// so the per-step body is just: pull an actual time, advance the
    /// clock, check the deadline. When the sink does not consume records
    /// ([`TraceSink::WANTS_RECORDS`] is `false`, e.g. [`NullSink`]),
    /// [`ActionRecord`] construction is compiled out of the loop entirely.
    pub fn run_cycle<X, S>(
        &mut self,
        cycle: usize,
        start: Time,
        exec: &mut X,
        sink: &mut S,
    ) -> CycleSummary
    where
        X: ExecutionTimeSource,
        S: TraceSink,
    {
        let n = self.sys.n_actions();
        let deadlines = self.sys.deadlines().as_slice();
        let mut summary = CycleSummary::new(cycle, start);
        let mut prev_q: Option<Quality> = None;
        sink.begin_cycle(cycle, start, n);
        self.manager.reset();
        let mut t = start;
        let mut i = 0;
        while i < n {
            let decision = self.manager.decide(i, t);
            let overhead = self.overhead.cost(decision.work);
            t += overhead;
            // A zero hold must still make progress; an oversized hold is
            // clamped to the remaining actions.
            let hold = decision.hold.clamp(1, n - i);
            let quality = decision.quality;
            // Per-decision bookkeeping, hoisted out of the hold span.
            summary.actions += hold;
            summary.qm_calls += 1;
            summary.qm_work += decision.work;
            summary.qm_overhead += overhead;
            summary.quality_sum += quality.index() as u64 * hold as u64;
            summary.min_quality = summary.min_quality.min(quality);
            summary.max_quality = summary.max_quality.max(quality);
            if prev_q.is_some_and(|p| p != quality) {
                summary.switches += 1;
            }
            prev_q = Some(quality);
            summary.infeasible += usize::from(decision.infeasible);
            // The tight inner loop over the span's pre-read deadline row.
            for (step, &deadline) in deadlines[i..i + hold].iter().enumerate() {
                let duration = exec.actual(cycle, i, quality);
                let end = t + duration;
                let missed = deadline.is_some_and(|d| end > d);
                summary.busy += duration;
                summary.misses += usize::from(missed);
                if S::WANTS_RECORDS {
                    let first = step == 0;
                    sink.record(&ActionRecord {
                        action: i,
                        quality,
                        decided: first,
                        qm_work: if first { decision.work } else { 0 },
                        qm_overhead: if first { overhead } else { Time::ZERO },
                        start: t,
                        duration,
                        end,
                        missed_deadline: missed,
                        infeasible: first && decision.infeasible,
                    });
                }
                t = end;
                i += 1;
            }
            summary.end = t;
        }
        if summary.actions == 0 {
            // Match `CycleStats` on empty cycles.
            summary.min_quality = Quality::MIN;
        }
        sink.end_cycle(&summary);
        summary
    }

    /// Run `cycles` consecutive cycles with per-cycle period `period`,
    /// carrying time across boundaries per `chaining`. Returns whole-run
    /// aggregates; per-action data streams into `sink`.
    pub fn run_cycles<X, S>(
        &mut self,
        cycles: usize,
        period: Time,
        chaining: CycleChaining,
        exec: &mut X,
        sink: &mut S,
    ) -> RunSummary
    where
        X: ExecutionTimeSource,
        S: TraceSink,
    {
        let mut run = RunSummary::default();
        let mut start_rel = Time::ZERO;
        for c in 0..cycles {
            let summary = self.run_cycle(c, start_rel, exec, sink);
            run.absorb(&summary);
            start_rel = summary.end - period;
            if chaining == CycleChaining::ArrivalClamped {
                start_rel = start_rel.max(Time::ZERO);
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ConstantExec, CycleRunner, CyclicRunner};
    use crate::manager::NumericManager;
    use crate::policy::MixedPolicy;
    use crate::system::SystemBuilder;

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(3)
            .action("a", &[10, 25, 40], &[4, 9, 14])
            .action("b", &[12, 22, 35], &[6, 11, 17])
            .action("c", &[8, 18, 28], &[3, 8, 12])
            .action("d", &[15, 24, 33], &[7, 12, 16])
            .deadline_last(Time::from_ns(130))
            .build()
            .unwrap()
    }

    #[test]
    fn summary_matches_trace_stats() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let overhead = OverheadModel::new(Time::from_ns(2), Time::from_ns(1));
        let mut engine = Engine::new(&s, NumericManager::new(&s, &p), overhead);
        let mut trace = Trace::default();
        let summary = engine.run_cycle(
            0,
            Time::ZERO,
            &mut ConstantExec::average(s.table()),
            &mut trace,
        );
        let stats = trace.cycles[0].stats();
        assert_eq!(summary.actions, trace.cycles[0].records.len());
        assert_eq!(summary.qm_calls, stats.qm_calls);
        assert_eq!(summary.qm_overhead, stats.qm_overhead);
        assert_eq!(summary.busy, stats.busy);
        assert_eq!(summary.switches, stats.switches);
        assert_eq!(summary.misses, stats.misses);
        assert_eq!(summary.end, stats.end);
        assert!((summary.avg_quality() - stats.avg_quality).abs() < 1e-12);
        assert!((summary.overhead_ratio() - stats.overhead_ratio).abs() < 1e-12);
    }

    #[test]
    fn engine_agrees_with_legacy_runners() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let overhead = OverheadModel::new(Time::from_ns(3), Time::from_ns(1));

        // Single cycle vs CycleRunner.
        let legacy = CycleRunner::new(&s, NumericManager::new(&s, &p), overhead).run_cycle(
            0,
            Time::ZERO,
            &mut ConstantExec::worst_case(s.table()),
        );
        let mut engine = Engine::new(&s, NumericManager::new(&s, &p), overhead);
        let mut trace = Trace::default();
        engine.run_cycle(
            0,
            Time::ZERO,
            &mut ConstantExec::worst_case(s.table()),
            &mut trace,
        );
        assert_eq!(legacy.records, trace.cycles[0].records);

        // Multi-cycle vs CyclicRunner.
        let period = Time::from_ns(130);
        let legacy = CyclicRunner::new(&s, NumericManager::new(&s, &p), overhead, period)
            .run(3, &mut ConstantExec::average(s.table()));
        let mut engine = Engine::new(&s, NumericManager::new(&s, &p), overhead);
        let mut trace = Trace::default();
        let run = engine.run_cycles(
            3,
            period,
            CycleChaining::WorkConserving,
            &mut ConstantExec::average(s.table()),
            &mut trace,
        );
        assert_eq!(legacy.cycles.len(), trace.cycles.len());
        for (a, b) in legacy.cycles.iter().zip(&trace.cycles) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.records, b.records);
        }
        assert_eq!(run.actions, legacy.total_actions());
        assert_eq!(run.misses, legacy.total_misses());
        assert_eq!(run.qm_calls, legacy.total_qm_calls());
        assert!((run.avg_quality() - legacy.avg_quality()).abs() < 1e-12);
        assert!((run.overhead_ratio() - legacy.overhead_ratio()).abs() < 1e-12);
    }

    #[test]
    fn record_buffer_reuses_caller_capacity() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let mut engine = Engine::new(&s, NumericManager::new(&s, &p), OverheadModel::ZERO);
        let mut buf: Vec<ActionRecord> = Vec::with_capacity(16);
        let base_ptr = buf.as_ptr();
        for cycle in 0..4 {
            buf.clear();
            let mut sink = RecordBuffer::new(&mut buf);
            engine.run_cycle(
                cycle,
                Time::ZERO,
                &mut ConstantExec::average(s.table()),
                &mut sink,
            );
            assert_eq!(buf.len(), 4);
        }
        // Capacity was sufficient, so no reallocation ever happened.
        assert_eq!(base_ptr, buf.as_ptr());
    }

    #[test]
    fn null_sink_and_summaries_only() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let mut engine = Engine::new(&s, NumericManager::new(&s, &p), OverheadModel::ZERO);
        let run = engine.run_cycles(
            5,
            Time::from_ns(130),
            CycleChaining::WorkConserving,
            &mut ConstantExec::average(s.table()),
            &mut NullSink,
        );
        assert_eq!(run.cycles, 5);
        assert_eq!(run.actions, 20);
        assert_eq!(run.misses, 0);
        assert!(run.avg_quality() > 0.0);
    }

    #[test]
    fn arrival_clamping_matches_legacy() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let legacy = CyclicRunner::new(
            &s,
            NumericManager::new(&s, &p),
            OverheadModel::ZERO,
            Time::from_ns(130),
        )
        .with_arrival_clamping()
        .run(3, &mut ConstantExec::average(s.table()));
        let mut engine = Engine::new(&s, NumericManager::new(&s, &p), OverheadModel::ZERO);
        let mut trace = Trace::default();
        engine.run_cycles(
            3,
            Time::from_ns(130),
            CycleChaining::ArrivalClamped,
            &mut ConstantExec::average(s.table()),
            &mut trace,
        );
        for (a, b) in legacy.cycles.iter().zip(&trace.cycles) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.records, b.records);
        }
    }

    /// Regression: an early-finishing final cycle (its relative end is
    /// *earlier* than a previous cycle's — even negative, thanks to
    /// work-conserving earliness) must not drag `last_end` backwards.
    /// The serial absorb path, the trace-replay reduction and the
    /// fleet-style merge all have to agree byte-for-byte.
    #[test]
    fn last_end_takes_max_across_early_finishing_cycles() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        // Average times total far under the 130 ns period, so each cycle
        // starts (and ends) earlier than the one before: the *final*
        // cycle's end is the minimum, and negative.
        let mut engine = Engine::new(&s, NumericManager::new(&s, &p), OverheadModel::ZERO);
        let mut trace = Trace::default();
        let run = engine.run_cycles(
            4,
            Time::from_ns(130),
            CycleChaining::WorkConserving,
            &mut ConstantExec::average(s.table()),
            &mut trace,
        );
        let ends: Vec<Time> = trace.cycles.iter().map(|c| c.stats().end).collect();
        let max_end = ends.iter().copied().fold(Time::NEG_INF, Time::max);
        assert!(
            ends.last().copied().unwrap() < max_end,
            "the scenario must exercise an early-finishing final cycle"
        );
        assert!(ends.last().copied().unwrap() < Time::ZERO);
        // Serial path.
        assert_eq!(run.last_end, max_end);
        // Trace-replay path.
        assert_eq!(trace.run_summary(), run);
        // Fleet-merge path: merging per-stream summaries keeps the max.
        let mut merged = RunSummary::default();
        merged.merge(&run);
        merged.merge(&run);
        assert_eq!(merged.last_end, run.last_end);
    }

    #[test]
    fn tee_duplicates_streams() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        let mut engine = Engine::new(&s, NumericManager::new(&s, &p), OverheadModel::ZERO);
        let mut trace = Trace::default();
        let mut buf = Vec::new();
        {
            let mut rb = RecordBuffer::new(&mut buf);
            let mut tee = Tee(&mut trace, &mut rb);
            engine.run_cycle(
                0,
                Time::ZERO,
                &mut ConstantExec::average(s.table()),
                &mut tee,
            );
        }
        assert_eq!(trace.cycles[0].records, buf);
    }
}
