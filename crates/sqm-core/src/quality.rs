//! Quality levels.
//!
//! The paper parameterizes every action by an integer quality level
//! `q ∈ Q = {0, …, qmax}` (the MPEG evaluation uses `|Q| = 7`). Execution
//! times are non-decreasing in `q`; the Quality Manager always picks the
//! *maximal* level compatible with the deadlines.

use std::fmt;

/// One quality level — a small integer index into the quality set.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Quality(u8);

impl Quality {
    /// The minimal quality level `qmin = 0`, present in every quality set.
    pub const MIN: Quality = Quality(0);

    /// Construct from a raw index.
    #[inline]
    pub const fn new(index: u8) -> Quality {
        Quality(index)
    }

    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The next-higher level (`q + 1` of Proposition 2); unchecked against
    /// the set bound, pair with [`QualitySet::contains`].
    #[inline]
    pub const fn up(self) -> Quality {
        Quality(self.0 + 1)
    }

    /// The next-lower level, or `None` at `qmin`.
    #[inline]
    pub const fn down(self) -> Option<Quality> {
        match self.0.checked_sub(1) {
            Some(i) => Some(Quality(i)),
            None => None,
        }
    }
}

impl fmt::Display for Quality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The finite, contiguous set of quality levels `{0, …, count-1}`.
///
/// ```
/// use sqm_core::quality::{Quality, QualitySet};
/// let q = QualitySet::new(7).unwrap(); // the paper's MPEG configuration
/// assert_eq!(q.max().index(), 6);
/// assert_eq!(q.iter().count(), 7);
/// assert_eq!(q.iter_desc().next(), Some(q.max()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QualitySet {
    count: u8,
}

impl QualitySet {
    /// A quality set with `count ≥ 1` levels.
    pub fn new(count: usize) -> Option<QualitySet> {
        if count == 0 || count > u8::MAX as usize {
            None
        } else {
            Some(QualitySet { count: count as u8 })
        }
    }

    /// Number of levels `|Q|`.
    #[inline]
    pub const fn len(self) -> usize {
        self.count as usize
    }

    /// `|Q|` is never zero, but clippy insists.
    #[inline]
    pub const fn is_empty(self) -> bool {
        false
    }

    /// The minimal level `qmin` (always index 0).
    #[inline]
    pub const fn min(self) -> Quality {
        Quality::MIN
    }

    /// The maximal level `qmax`.
    #[inline]
    pub const fn max(self) -> Quality {
        Quality(self.count - 1)
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, q: Quality) -> bool {
        q.0 < self.count
    }

    /// Ascending iterator `q0, q1, …, qmax`.
    pub fn iter(self) -> impl DoubleEndedIterator<Item = Quality> + ExactSizeIterator {
        (0..self.count).map(Quality)
    }

    /// Descending iterator `qmax, …, q0` — the order in which the Quality
    /// Manager probes levels (it wants the maximal feasible one).
    pub fn iter_desc(self) -> impl Iterator<Item = Quality> {
        (0..self.count).rev().map(Quality)
    }
}

impl fmt::Display for QualitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q = {{0..{}}}", self.count - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(QualitySet::new(0).is_none());
        assert!(QualitySet::new(1).is_some());
        assert!(QualitySet::new(255).is_some());
        assert!(QualitySet::new(256).is_none());
    }

    #[test]
    fn min_max_and_membership() {
        let q = QualitySet::new(7).unwrap();
        assert_eq!(q.min(), Quality::new(0));
        assert_eq!(q.max(), Quality::new(6));
        assert!(q.contains(Quality::new(6)));
        assert!(!q.contains(Quality::new(7)));
        assert_eq!(q.len(), 7);
        assert!(!q.is_empty());
    }

    #[test]
    fn up_down_navigation() {
        let q = Quality::new(3);
        assert_eq!(q.up(), Quality::new(4));
        assert_eq!(q.down(), Some(Quality::new(2)));
        assert_eq!(Quality::MIN.down(), None);
    }

    #[test]
    fn iteration_orders() {
        let q = QualitySet::new(3).unwrap();
        let asc: Vec<usize> = q.iter().map(Quality::index).collect();
        let desc: Vec<usize> = q.iter_desc().map(Quality::index).collect();
        assert_eq!(asc, vec![0, 1, 2]);
        assert_eq!(desc, vec![2, 1, 0]);
    }

    #[test]
    fn singleton_set() {
        let q = QualitySet::new(1).unwrap();
        assert_eq!(q.min(), q.max());
        assert_eq!(q.iter().count(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Quality::new(4).to_string(), "q4");
        assert_eq!(QualitySet::new(7).unwrap().to_string(), "Q = {0..6}");
    }
}
