//! Multi-task composition — the "adaption to multiple tasks" direction of
//! the paper's conclusion.
//!
//! The paper's method assumes the application software is *already
//! scheduled* into one sequence. When several cyclic tasks share the
//! processor, a static interleaving turns them into exactly such a
//! sequence: the composed system's action list is a deterministic merge of
//! the tasks' action lists, each action keeping its own timing rows and its
//! own deadline (relative to the shared cycle start). The single Quality
//! Manager then controls the merged sequence — quality degrades *globally*
//! when any task's deadline tightens, which is the modular-use-of-speed-
//! diagrams behaviour the conclusion sketches.
//!
//! The merge is driven by an explicit slot `pattern` (e.g. `[0, 0, 1]`
//! interleaves two actions of task 0 with one of task 1), walked cyclically
//! until every task is exhausted; slots of exhausted tasks are skipped.

use crate::action::{ActionId, DeadlineMap};
use crate::controller::{ExecutionTimeSource, OverheadModel};
use crate::engine::{CycleChaining, CycleSummary, Engine, RunSummary, TraceSink};
use crate::error::BuildError;
use crate::manager::QualityManager;
use crate::system::ParameterizedSystem;
use crate::time::Time;
use crate::timing::TimeTableBuilder;
use crate::trace::{ActionRecord, Trace};

/// Provenance of one merged action: which task it came from and its index
/// within that task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Index into the task list passed to [`interleave`].
    pub task: usize,
    /// The action's index within its original task.
    pub action: ActionId,
}

/// Result of a multi-task merge.
#[derive(Clone, Debug)]
pub struct Interleaved {
    /// The merged, validated parameterized system.
    pub system: ParameterizedSystem,
    /// Per merged action: where it came from.
    pub provenance: Vec<Provenance>,
}

impl Interleaved {
    /// The merged indices belonging to task `task`, in order.
    pub fn actions_of(&self, task: usize) -> Vec<ActionId> {
        self.provenance
            .iter()
            .enumerate()
            .filter(|(_, p)| p.task == task)
            .map(|(i, _)| i)
            .collect()
    }

    /// Project an executed merged-cycle trace onto one task: the task's own
    /// actions with their original indices, keeping the merged timeline's
    /// start/end times. This is the "modular use of speed diagrams" of the
    /// paper's conclusion — feed the projection to the *task's own*
    /// [`crate::speed::SpeedDiagram`] and the interleaved competitor shows
    /// up as reduced apparent speed (time passes while the task makes no
    /// virtual progress).
    pub fn project_trace(
        &self,
        cycle: &crate::trace::CycleTrace,
        task: usize,
    ) -> crate::trace::CycleTrace {
        let records = cycle
            .records
            .iter()
            .filter(|r| self.provenance[r.action].task == task)
            .map(|r| crate::trace::ActionRecord {
                action: self.provenance[r.action].action,
                ..*r
            })
            .collect();
        crate::trace::CycleTrace {
            cycle: cycle.cycle,
            start: cycle.start,
            records,
        }
    }
}

/// Statically interleave several tasks into one schedulable sequence.
///
/// * All tasks must share the same quality set.
/// * `pattern` lists task indices; it is walked cyclically, emitting the
///   next unconsumed action of the named task (slots of exhausted tasks are
///   skipped). An empty pattern defaults to round-robin over all tasks.
/// * Deadlines are carried over verbatim: they refer to the shared cycle
///   start. The merged system re-validates feasibility, so an infeasible
///   combination (too much minimum-quality worst-case work before some
///   task's deadline) is rejected here rather than detected at run time.
pub fn interleave(
    tasks: &[&ParameterizedSystem],
    pattern: &[usize],
) -> Result<Interleaved, BuildError> {
    if tasks.is_empty() {
        return Err(BuildError::EmptyActionSequence);
    }
    let nq = tasks[0].qualities().len();
    for t in tasks {
        if t.qualities().len() != nq {
            return Err(BuildError::QualitySetMismatch {
                expected: nq,
                got: t.qualities().len(),
            });
        }
    }
    let round_robin: Vec<usize> = (0..tasks.len()).collect();
    let pattern = if pattern.is_empty() {
        &round_robin[..]
    } else {
        pattern
    };
    let total: usize = tasks.iter().map(|t| t.n_actions()).sum();

    let mut next = vec![0usize; tasks.len()];
    let mut actions = Vec::with_capacity(total);
    let mut provenance = Vec::with_capacity(total);
    let mut deadline_pairs = Vec::new();
    let mut builder = TimeTableBuilder::new();
    let mut slot = 0usize;
    while actions.len() < total {
        let task = pattern[slot % pattern.len()];
        slot += 1;
        if task >= tasks.len() {
            continue;
        }
        let src = tasks[task];
        let a = next[task];
        if a >= src.n_actions() {
            continue;
        }
        next[task] += 1;
        let merged_index = actions.len();
        let mut info = src.action(a).clone();
        info.name = format!("t{task}.{}", info.name);
        actions.push(info);
        provenance.push(Provenance { task, action: a });
        let qualities = src.qualities();
        let wc: Vec<_> = qualities.iter().map(|q| src.table().wc(a, q)).collect();
        let av: Vec<_> = qualities.iter().map(|q| src.table().av(a, q)).collect();
        builder.push_action(&wc, &av);
        if let Some(d) = src.deadlines().get(a) {
            deadline_pairs.push((merged_index, d));
        }
    }
    let table = builder.build()?;
    let mut deadlines = DeadlineMap::new(total);
    for (k, d) in deadline_pairs {
        deadlines.set(k, d);
    }
    // The merged final action must be constrained for tD to be total. If
    // the pattern put an unconstrained tail last, attach the latest
    // deadline of any task to the final action — it completes the cycle.
    if deadlines.get(total - 1).is_none() {
        let latest = tasks
            .iter()
            .map(|t| t.final_deadline())
            .max()
            .expect("non-empty task list");
        deadlines.set(total - 1, latest);
    }
    let system = ParameterizedSystem::new(actions, table, deadlines)?;
    Ok(Interleaved { system, provenance })
}

/// Per-task aggregates of a multi-task run, collected inline by
/// [`MultiTaskRunner`] without a second pass over the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskSummary {
    /// Actions of this task that executed.
    pub actions: usize,
    /// Sum of the task's chosen quality indices.
    pub quality_sum: u64,
    /// Deadline misses attributed to this task's actions.
    pub misses: usize,
}

impl TaskSummary {
    /// Mean quality level over the task's actions.
    pub fn avg_quality(&self) -> f64 {
        crate::engine::mean_quality(self.quality_sum, self.actions)
    }

    /// Fold another run's per-task aggregates into this one — the
    /// multi-task counterpart of [`crate::engine::RunSummary::merge`],
    /// used when independent streams of the *same* interleaving run on a
    /// [`crate::fleet`] and their per-task attributions are combined.
    pub fn merge(&mut self, other: &TaskSummary) {
        self.actions += other.actions;
        self.quality_sum += other.quality_sum;
        self.misses += other.misses;
    }
}

/// Sink splitting the merged record stream into per-task aggregates via
/// the interleaving's provenance map.
struct TaskSplitter<'a, S> {
    provenance: &'a [Provenance],
    per_task: &'a mut [TaskSummary],
    inner: S,
}

impl<S: TraceSink> TraceSink for TaskSplitter<'_, S> {
    fn begin_cycle(&mut self, cycle: usize, start: Time, expected_actions: usize) {
        self.inner.begin_cycle(cycle, start, expected_actions);
    }

    fn record(&mut self, record: &ActionRecord) {
        let task = self.provenance[record.action].task;
        let t = &mut self.per_task[task];
        t.actions += 1;
        t.quality_sum += record.quality.index() as u64;
        t.misses += usize::from(record.missed_deadline);
        self.inner.record(record);
    }

    fn end_cycle(&mut self, summary: &CycleSummary) {
        self.inner.end_cycle(summary);
    }
}

/// Runs a statically interleaved multi-task system through the shared
/// [`Engine`], attributing results back to the source tasks.
///
/// One Quality Manager controls the merged sequence (the paper
/// conclusion's "adaption to multiple tasks"); this runner adds what the
/// plain runners cannot: per-task quality/miss accounting collected during
/// execution, with the same zero-per-action-allocation guarantee as the
/// engine itself.
///
/// # Examples
///
/// Interleave two tasks round-robin, run three merged cycles, and read
/// the per-task attribution:
///
/// ```
/// use sqm_core::controller::{ConstantExec, OverheadModel};
/// use sqm_core::manager::NumericManager;
/// use sqm_core::multi::{interleave, MultiTaskRunner};
/// use sqm_core::policy::MixedPolicy;
/// use sqm_core::system::SystemBuilder;
/// use sqm_core::time::Time;
///
/// let video = SystemBuilder::new(2)
///     .action("v0", &[100, 180], &[50, 90])
///     .action("v1", &[100, 180], &[50, 90])
///     .deadline_last(Time::from_ns(900))
///     .build()
///     .unwrap();
/// let audio = SystemBuilder::new(2)
///     .action("s0", &[40, 70], &[20, 35])
///     .deadline_last(Time::from_ns(800))
///     .build()
///     .unwrap();
///
/// let merged = interleave(&[&video, &audio], &[]).unwrap();
/// let policy = MixedPolicy::new(&merged.system);
/// let mut runner = MultiTaskRunner::new(
///     &merged,
///     NumericManager::new(&merged.system, &policy),
///     OverheadModel::ZERO,
///     Time::from_ns(900),
/// );
///
/// let run = runner.run_into(
///     3,
///     &mut ConstantExec::average(merged.system.table()),
///     &mut sqm_core::engine::NullSink,
/// );
/// assert_eq!(run.cycles, 3);
///
/// let tasks = runner.task_summaries();
/// assert_eq!(tasks[0].actions, 6, "2 video actions × 3 cycles");
/// assert_eq!(tasks[1].actions, 3, "1 audio action × 3 cycles");
/// assert_eq!(tasks[0].misses + tasks[1].misses, run.misses);
/// ```
pub struct MultiTaskRunner<'a, M: QualityManager> {
    interleaved: &'a Interleaved,
    engine: Engine<'a, M>,
    period: Time,
    chaining: CycleChaining,
    per_task: Vec<TaskSummary>,
}

impl<'a, M: QualityManager> MultiTaskRunner<'a, M> {
    /// A runner for `interleaved` under `manager` and `overhead`, with
    /// per-cycle period `period` (work-conserving chaining by default).
    pub fn new(
        interleaved: &'a Interleaved,
        manager: M,
        overhead: OverheadModel,
        period: Time,
    ) -> Self {
        let n_tasks = interleaved
            .provenance
            .iter()
            .map(|p| p.task + 1)
            .max()
            .unwrap_or(0);
        MultiTaskRunner {
            interleaved,
            engine: Engine::new(&interleaved.system, manager, overhead),
            period,
            chaining: CycleChaining::WorkConserving,
            per_task: vec![TaskSummary::default(); n_tasks],
        }
    }

    /// Clamp cycle starts at their period boundary (live-capture mode),
    /// mirroring `CyclicRunner::with_arrival_clamping`.
    pub fn with_arrival_clamping(mut self) -> Self {
        self.chaining = CycleChaining::ArrivalClamped;
        self
    }

    /// Access the wrapped manager.
    pub fn manager(&mut self) -> &mut M {
        self.engine.manager()
    }

    /// Per-task aggregates of everything run so far.
    pub fn task_summaries(&self) -> &[TaskSummary] {
        &self.per_task
    }

    /// Run `cycles` merged cycles, streaming records into `sink` and
    /// folding per-task aggregates as records are produced.
    pub fn run_into<X: ExecutionTimeSource, S: TraceSink>(
        &mut self,
        cycles: usize,
        exec: &mut X,
        sink: &mut S,
    ) -> RunSummary {
        let mut splitter = TaskSplitter {
            provenance: &self.interleaved.provenance,
            per_task: &mut self.per_task,
            inner: sink,
        };
        self.engine
            .run_cycles(cycles, self.period, self.chaining, exec, &mut splitter)
    }

    /// Run `cycles` merged cycles, materializing the full merged trace
    /// (project per task with [`Interleaved::project_trace`]).
    pub fn run<X: ExecutionTimeSource>(&mut self, cycles: usize, exec: &mut X) -> Trace {
        let mut trace = Trace::default();
        self.run_into(cycles, exec, &mut trace);
        trace
    }

    /// Number of source tasks.
    pub fn n_tasks(&self) -> usize {
        self.per_task.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemBuilder;
    use crate::time::Time;

    fn task(n: usize, deadline_ns: i64) -> ParameterizedSystem {
        let mut b = SystemBuilder::new(2);
        for i in 0..n {
            b = b.action(&format!("a{i}"), &[10, 20], &[5, 10]);
        }
        b.deadline_last(Time::from_ns(deadline_ns)).build().unwrap()
    }

    #[test]
    fn round_robin_merge() {
        let t0 = task(2, 200);
        let t1 = task(2, 220);
        let m = interleave(&[&t0, &t1], &[]).unwrap();
        assert_eq!(m.system.n_actions(), 4);
        assert_eq!(
            m.provenance,
            vec![
                Provenance { task: 0, action: 0 },
                Provenance { task: 1, action: 0 },
                Provenance { task: 0, action: 1 },
                Provenance { task: 1, action: 1 },
            ]
        );
        assert_eq!(m.actions_of(0), vec![0, 2]);
        assert_eq!(m.system.action(1).name, "t1.a0");
        // Deadlines carried: t0's final deadline lands on merged index 2.
        assert_eq!(m.system.deadlines().get(2), Some(Time::from_ns(200)));
        assert_eq!(m.system.deadlines().get(3), Some(Time::from_ns(220)));
    }

    #[test]
    fn weighted_pattern() {
        let t0 = task(4, 400);
        let t1 = task(2, 400);
        let m = interleave(&[&t0, &t1], &[0, 0, 1]).unwrap();
        let tasks: Vec<usize> = m.provenance.iter().map(|p| p.task).collect();
        assert_eq!(tasks, vec![0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn exhausted_tasks_are_skipped() {
        let t0 = task(1, 300);
        let t1 = task(3, 300);
        let m = interleave(&[&t0, &t1], &[]).unwrap();
        let tasks: Vec<usize> = m.provenance.iter().map(|p| p.task).collect();
        assert_eq!(tasks, vec![0, 1, 1, 1]);
    }

    #[test]
    fn unconstrained_tail_gets_latest_deadline() {
        // Pattern [1, 0]: t0's single action (deadline 300) lands second
        // but t1's constrained action lands first — tail must be patched.
        let t0 = task(1, 300);
        let t1 = task(1, 100);
        let m = interleave(&[&t1, &t0], &[0, 1]).unwrap();
        assert_eq!(m.system.deadlines().get(0), Some(Time::from_ns(100)));
        assert_eq!(m.system.deadlines().get(1), Some(Time::from_ns(300)));
    }

    #[test]
    fn quality_set_mismatch_rejected() {
        let t0 = task(1, 300);
        let t1 = SystemBuilder::new(3)
            .action("x", &[10, 20, 30], &[5, 10, 15])
            .deadline_last(Time::from_ns(100))
            .build()
            .unwrap();
        let err = interleave(&[&t0, &t1], &[]).unwrap_err();
        assert_eq!(
            err,
            BuildError::QualitySetMismatch {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn empty_task_list_rejected() {
        assert_eq!(
            interleave(&[], &[]).unwrap_err(),
            BuildError::EmptyActionSequence
        );
    }

    #[test]
    fn infeasible_combination_rejected_at_merge() {
        // Each task alone is feasible, but t1's deadline of 100 must now
        // also absorb t0's interleaved worst-case work.
        let t0 = task(8, 1_000);
        let t1 = task(8, 100);
        let err = interleave(&[&t0, &t1], &[]).unwrap_err();
        assert!(matches!(err, BuildError::InfeasibleAtMinQuality { .. }));
    }

    #[test]
    fn projection_restores_task_local_indices_and_timeline() {
        use crate::controller::{ConstantExec, CycleRunner, OverheadModel};
        use crate::manager::NumericManager;
        use crate::policy::MixedPolicy;
        use crate::speed::SpeedDiagram;
        let t0 = task(3, 200);
        let t1 = task(2, 220);
        let m = interleave(&[&t0, &t1], &[]).unwrap();
        let p = MixedPolicy::new(&m.system);
        let mut runner = CycleRunner::new(
            &m.system,
            NumericManager::new(&m.system, &p),
            OverheadModel::ZERO,
        );
        let merged = runner.run_cycle(0, Time::ZERO, &mut ConstantExec::average(m.system.table()));

        let proj0 = m.project_trace(&merged, 0);
        let proj1 = m.project_trace(&merged, 1);
        assert_eq!(proj0.records.len(), 3);
        assert_eq!(proj1.records.len(), 2);
        // Task-local indices are restored.
        assert_eq!(
            proj0.records.iter().map(|r| r.action).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // The merged timeline is preserved: projected records keep their
        // global start/end, so gaps appear where the other task ran.
        assert!(proj0.records[1].start > proj0.records[0].end);
        // Each projection feeds the task's *own* speed diagram: the final
        // point reaches the task's deadline height.
        let p0 = MixedPolicy::new(&t0);
        let d0 = SpeedDiagram::for_final_deadline(&p0);
        let pts = d0.trajectory(&proj0);
        assert_eq!(pts.len(), 4);
        assert!((pts.last().unwrap().1 - 200.0).abs() < 1e-9);
        // And the task finished before its own deadline.
        assert!(proj0.records.last().unwrap().end <= Time::from_ns(200));
    }

    #[test]
    fn multi_task_runner_attributes_per_task_results() {
        use crate::controller::{ConstantExec, OverheadModel};
        use crate::manager::NumericManager;
        use crate::policy::MixedPolicy;
        let t0 = task(3, 150);
        let t1 = task(2, 160);
        let m = interleave(&[&t0, &t1], &[]).unwrap();
        let p = MixedPolicy::new(&m.system);
        let period = Time::from_ns(160);
        let mut runner = MultiTaskRunner::new(
            &m,
            NumericManager::new(&m.system, &p),
            OverheadModel::ZERO,
            period,
        );
        assert_eq!(runner.n_tasks(), 2);
        let trace = runner.run(3, &mut ConstantExec::average(m.system.table()));
        assert_eq!(trace.cycles.len(), 3);
        let tasks = runner.task_summaries();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].actions, 9, "3 actions × 3 cycles");
        assert_eq!(tasks[1].actions, 6, "2 actions × 3 cycles");
        assert_eq!(tasks[0].misses + tasks[1].misses, trace.total_misses());
        // Per-task aggregates must equal a post-hoc projection.
        for (ti, sum) in tasks.iter().enumerate() {
            let projected: usize = trace
                .cycles
                .iter()
                .map(|c| m.project_trace(c, ti).records.len())
                .sum();
            assert_eq!(sum.actions, projected);
        }
        assert!(tasks[0].avg_quality() >= 0.0);
    }

    #[test]
    fn multi_task_runner_arrival_clamping_pins_starts() {
        use crate::controller::{ConstantExec, OverheadModel};
        use crate::manager::NumericManager;
        use crate::policy::MixedPolicy;
        let t0 = task(3, 150);
        let t1 = task(2, 160);
        let m = interleave(&[&t0, &t1], &[]).unwrap();
        let p = MixedPolicy::new(&m.system);
        let mut runner = MultiTaskRunner::new(
            &m,
            NumericManager::new(&m.system, &p),
            OverheadModel::ZERO,
            Time::from_ns(160),
        )
        .with_arrival_clamping();
        let trace = runner.run(3, &mut ConstantExec::average(m.system.table()));
        for c in &trace.cycles {
            assert_eq!(c.start, Time::ZERO, "live-capture cycles never start early");
        }
    }

    #[test]
    fn multi_task_runner_agrees_with_plain_cyclic_runner() {
        use crate::controller::{ConstantExec, CyclicRunner, OverheadModel};
        use crate::manager::NumericManager;
        use crate::policy::MixedPolicy;
        let t0 = task(3, 150);
        let t1 = task(3, 160);
        let m = interleave(&[&t0, &t1], &[]).unwrap();
        let p = MixedPolicy::new(&m.system);
        let period = Time::from_ns(160);
        let legacy = CyclicRunner::new(
            &m.system,
            NumericManager::new(&m.system, &p),
            OverheadModel::ZERO,
            period,
        )
        .run(2, &mut ConstantExec::worst_case(m.system.table()));
        let mut runner = MultiTaskRunner::new(
            &m,
            NumericManager::new(&m.system, &p),
            OverheadModel::ZERO,
            period,
        );
        let trace = runner.run(2, &mut ConstantExec::worst_case(m.system.table()));
        for (a, b) in legacy.cycles.iter().zip(&trace.cycles) {
            assert_eq!(a.records, b.records);
        }
    }

    #[test]
    fn task_summary_merge_combines_independent_streams() {
        use crate::controller::{ConstantExec, OverheadModel};
        use crate::manager::NumericManager;
        use crate::policy::MixedPolicy;
        // Two independent streams of the same interleaving (e.g. two fleet
        // shards): merging their per-task attributions must equal the sum
        // of every field, and leave derived stats consistent.
        let t0 = task(3, 150);
        let t1 = task(2, 160);
        let m = interleave(&[&t0, &t1], &[]).unwrap();
        let p = MixedPolicy::new(&m.system);
        let period = Time::from_ns(160);
        let run = |cycles: usize, worst: bool| -> Vec<TaskSummary> {
            let mut runner = MultiTaskRunner::new(
                &m,
                NumericManager::new(&m.system, &p),
                OverheadModel::ZERO,
                period,
            );
            let mut exec = if worst {
                ConstantExec::worst_case(m.system.table())
            } else {
                ConstantExec::average(m.system.table())
            };
            runner.run(cycles, &mut exec);
            runner.task_summaries().to_vec()
        };
        let a = run(2, false);
        let b = run(3, true);
        let mut merged = a.clone();
        for (m_t, b_t) in merged.iter_mut().zip(&b) {
            m_t.merge(b_t);
        }
        for ((m_t, a_t), b_t) in merged.iter().zip(&a).zip(&b) {
            assert_eq!(m_t.actions, a_t.actions + b_t.actions);
            assert_eq!(m_t.quality_sum, a_t.quality_sum + b_t.quality_sum);
            assert_eq!(m_t.misses, a_t.misses + b_t.misses);
            assert!(
                (m_t.avg_quality()
                    - (a_t.quality_sum + b_t.quality_sum) as f64
                        / (a_t.actions + b_t.actions) as f64)
                    .abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn merged_system_is_controllable() {
        use crate::controller::{ConstantExec, CycleRunner, OverheadModel};
        use crate::manager::NumericManager;
        use crate::policy::MixedPolicy;
        let t0 = task(3, 150);
        let t1 = task(3, 160);
        let m = interleave(&[&t0, &t1], &[]).unwrap();
        let p = MixedPolicy::new(&m.system);
        let mgr = NumericManager::new(&m.system, &p);
        let mut runner = CycleRunner::new(&m.system, mgr, OverheadModel::ZERO);
        let trace = runner.run_cycle(
            0,
            Time::ZERO,
            &mut ConstantExec::worst_case(m.system.table()),
        );
        assert_eq!(trace.stats().misses, 0);
    }
}
