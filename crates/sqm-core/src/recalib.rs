//! Online recalibration seam — atomic mid-run region-table swaps.
//!
//! The paper's Quality Manager is provably safe only against the
//! `Cwc`/`Cav` model its tables were compiled from; when the platform
//! drifts, the compiled `tD` thresholds go stale and the manager either
//! misses deadlines (optimistic tables) or wastes budget (pessimistic
//! ones). This module provides the runtime half of the recalibration
//! loop: a place to *publish* a freshly compiled
//! [`QualityRegionTable`] while streams are running, and a manager that
//! picks the new table up without stopping the stream.
//!
//! * [`TableCell`] — a shared, thread-safe slot holding the current
//!   table behind an [`Arc`], with a monotone epoch counter. Publishing
//!   replaces the whole table in one step; readers clone the `Arc`, so a
//!   reader always sees either the complete old table or the complete
//!   new one — never a torn mix.
//! * [`AdaptiveLookupManager`] — realizes the same `Γ` as
//!   [`LookupManager`](crate::manager::LookupManager) over the cell's
//!   current table. It refreshes its snapshot in
//!   [`QualityManager::reset`], which the engine calls at every cycle
//!   start ([`Engine::run_cycle`](crate::engine::Engine::run_cycle)), so
//!   the swap granularity is the **cycle boundary**: every decision
//!   within one cycle consults one consistent table, and the first cycle
//!   after a publish runs entirely on the new one. Until the first
//!   publish, runs are byte-identical to a plain `LookupManager` over
//!   the seed table (pinned by test).
//!
//! The estimation half — observing actual execution times, re-profiling
//! `Cav`/`Cwc`, recompiling and publishing — lives upstream in
//! `sqm-platform`'s `recalib` module, which plugs into any runner
//! (including [`StreamingRunner`](crate::stream::StreamingRunner) and
//! the elastic scheduler) through the [`ExecutionTimeSource`] seam, so
//! no runner needed a new entry point for mid-run swaps.
//!
//! [`ExecutionTimeSource`]: crate::controller::ExecutionTimeSource

use crate::manager::{Decision, QualityManager};
use crate::quality::Quality;
use crate::regions::QualityRegionTable;
use crate::time::Time;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shared slot for the current compiled region table.
///
/// `Sync` by construction (mutex-guarded `Arc` plus an atomic epoch), so
/// one cell can serve every worker of a fleet; the epoch lets readers
/// skip the lock on the fast path (`epoch()` is a single atomic load)
/// and take it only when a publish actually happened.
#[derive(Debug)]
pub struct TableCell {
    slot: Mutex<Arc<QualityRegionTable>>,
    epoch: AtomicU64,
}

impl TableCell {
    /// A cell seeded with `table` at epoch 0.
    pub fn new(table: QualityRegionTable) -> TableCell {
        TableCell {
            slot: Mutex::new(Arc::new(table)),
            epoch: AtomicU64::new(0),
        }
    }

    /// The number of publishes so far (0 = still on the seed table).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Atomically replace the current table, returning the new epoch.
    /// Readers holding the old `Arc` keep a complete, consistent table;
    /// new loads see the replacement.
    pub fn publish(&self, table: QualityRegionTable) -> u64 {
        let mut slot = self.slot.lock().expect("table cell poisoned");
        *slot = Arc::new(table);
        // Bump under the lock so epoch and slot can never be observed
        // out of order by a loader that also takes the lock.
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Snapshot the current table and its epoch.
    pub fn load(&self) -> (u64, Arc<QualityRegionTable>) {
        let slot = self.slot.lock().expect("table cell poisoned");
        (self.epoch.load(Ordering::Acquire), Arc::clone(&slot))
    }
}

/// A lookup manager whose region table can be swapped mid-run through a
/// shared [`TableCell`].
///
/// Identical choices and identical charged work as
/// [`LookupManager`](crate::manager::LookupManager) over whatever table
/// is current; the snapshot refreshes at cycle boundaries (see the
/// module docs for the atomicity contract).
///
/// # Examples
///
/// Swap to a table compiled for a relaxed deadline mid-run; the manager
/// picks it up at the next cycle boundary:
///
/// ```
/// use sqm_core::compiler::compile_regions;
/// use sqm_core::manager::QualityManager;
/// use sqm_core::recalib::{AdaptiveLookupManager, TableCell};
/// use sqm_core::system::SystemBuilder;
/// use sqm_core::time::Time;
///
/// let sys = SystemBuilder::new(2)
///     .action("a", &[100, 200], &[60, 120])
///     .deadline_last(Time::from_ns(250))
///     .build()
///     .unwrap();
/// let cell = TableCell::new(compile_regions(&sys));
/// let mut manager = AdaptiveLookupManager::new(&cell);
///
/// let before = manager.decide(0, Time::ZERO);
/// cell.publish(compile_regions(&sys).shifted(Time::from_ns(50)));
/// manager.reset(); // what the engine does at every cycle start
/// let after = manager.decide(0, Time::ZERO);
/// assert_eq!(manager.swaps_seen(), 1);
/// assert!(after.quality >= before.quality, "more slack never lowers quality");
/// ```
#[derive(Debug)]
pub struct AdaptiveLookupManager<'c> {
    cell: &'c TableCell,
    table: Arc<QualityRegionTable>,
    epoch: u64,
    swaps_seen: u64,
}

impl<'c> AdaptiveLookupManager<'c> {
    /// A manager reading its table from `cell`.
    pub fn new(cell: &'c TableCell) -> AdaptiveLookupManager<'c> {
        let (epoch, table) = cell.load();
        AdaptiveLookupManager {
            cell,
            table,
            epoch,
            swaps_seen: 0,
        }
    }

    /// The table snapshot decisions are currently made against.
    pub fn table(&self) -> &QualityRegionTable {
        &self.table
    }

    /// How many published swaps this manager has picked up.
    pub fn swaps_seen(&self) -> u64 {
        self.swaps_seen
    }

    /// Re-snapshot the cell if a newer table was published. Called from
    /// [`QualityManager::reset`] (i.e. at every cycle start); callers
    /// driving decisions by hand may call it directly.
    pub fn refresh(&mut self) {
        if self.cell.epoch() != self.epoch {
            let (epoch, table) = self.cell.load();
            self.epoch = epoch;
            self.table = table;
            self.swaps_seen += 1;
        }
    }
}

impl QualityManager for AdaptiveLookupManager<'_> {
    fn decide(&mut self, state: usize, t: Time) -> Decision {
        let (choice, probes) = self.table.choose(state, t);
        match choice {
            Some(quality) => Decision {
                quality,
                hold: 1,
                work: probes,
                infeasible: false,
            },
            None => Decision {
                quality: Quality::MIN,
                hold: 1,
                work: probes,
                infeasible: true,
            },
        }
    }

    fn name(&self) -> &'static str {
        "regions-adaptive"
    }

    fn reset(&mut self) {
        self.refresh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile_regions;
    use crate::controller::{ConstantExec, FnExec, OverheadModel};
    use crate::engine::{CycleChaining, Engine};
    use crate::manager::LookupManager;
    use crate::source::Periodic;
    use crate::stream::{OverloadPolicy, StreamConfig, StreamingRunner};
    use crate::system::{ParameterizedSystem, SystemBuilder};
    use crate::trace::Trace;

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(3)
            .action("a", &[10, 25, 40], &[4, 9, 14])
            .action("b", &[12, 22, 35], &[6, 11, 17])
            .action("c", &[8, 18, 28], &[3, 8, 12])
            .deadline_last(Time::from_ns(55))
            .build()
            .unwrap()
    }

    /// With no publish, the adaptive manager is byte-identical to the
    /// plain lookup manager — summaries and full traces.
    #[test]
    fn without_swaps_identical_to_lookup_manager() {
        let s = sys();
        let regions = compile_regions(&s);
        let cell = TableCell::new(regions.clone());
        let overhead = OverheadModel::new(Time::from_ns(2), Time::from_ns(1));
        let period = s.final_deadline();
        for chaining in [CycleChaining::WorkConserving, CycleChaining::ArrivalClamped] {
            let mut plain_trace = Trace::default();
            let plain = Engine::new(&s, LookupManager::new(&regions), overhead).run_cycles(
                5,
                period,
                chaining,
                &mut ConstantExec::average(s.table()),
                &mut plain_trace,
            );
            let mut adaptive_trace = Trace::default();
            let adaptive = Engine::new(&s, AdaptiveLookupManager::new(&cell), overhead).run_cycles(
                5,
                period,
                chaining,
                &mut ConstantExec::average(s.table()),
                &mut adaptive_trace,
            );
            assert_eq!(adaptive, plain, "{chaining:?}");
            for (a, b) in plain_trace.cycles.iter().zip(&adaptive_trace.cycles) {
                assert_eq!(a.records, b.records, "{chaining:?}");
            }
        }
        assert_eq!(cell.epoch(), 0);
    }

    /// A table published mid-stream (from inside the execution-time
    /// source, i.e. while `StreamingRunner::run` is draining arrivals)
    /// takes effect at the next cycle boundary and changes decisions.
    #[test]
    fn mid_stream_publish_takes_effect_at_next_cycle() {
        let s = sys();
        let cell = TableCell::new(compile_regions(&s));
        // Relax the thresholds by +30 ns from cycle 2 on: with more
        // believed slack the manager chooses higher qualities.
        let relaxed = compile_regions(&s).shifted(Time::from_ns(30));
        let published = std::cell::Cell::new(false);
        let table = s.table().clone();
        let mut exec = FnExec(|cycle: usize, action: usize, q| {
            if cycle == 2 && !published.get() {
                published.set(true);
                cell.publish(relaxed.clone());
            }
            let _ = action;
            table.av(action, q)
        });
        let mut engine = Engine::new(&s, AdaptiveLookupManager::new(&cell), OverheadModel::ZERO);
        let mut trace = Trace::default();
        // Arrival-clamped starts: average-time cycles finish before the
        // period, so every cycle begins at t = 0 and the first decision
        // depends only on the table in force.
        let runner = StreamingRunner::new(StreamConfig::live(8, OverloadPolicy::Block));
        let out = runner.run(
            &mut engine,
            &mut Periodic::new(s.final_deadline(), 6),
            &mut exec,
            &mut trace,
        );
        assert_eq!(out.stats.processed, 6);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(engine.manager().swaps_seen(), 1);
        // Cycle 2 ran on the old snapshot (the publish happened after its
        // reset); cycle 3+ run on the relaxed table. The relaxed table
        // admits a strictly higher first-decision quality here.
        let q_first = |c: usize| trace.cycles[c].records[0].quality;
        assert_eq!(q_first(0), q_first(2), "publish is cycle-granular");
        assert!(
            q_first(3) > q_first(0),
            "relaxed table must raise the first choice: {:?} vs {:?}",
            q_first(3),
            q_first(0)
        );
        assert_eq!(q_first(3), q_first(5), "new table persists");
    }

    /// The cell is shareable across threads (fleet workers) and a
    /// publish is picked up exactly once per manager.
    #[test]
    fn cell_is_sync_and_swaps_count_once() {
        let s = sys();
        let cell = TableCell::new(compile_regions(&s));
        std::thread::scope(|scope| {
            let cell = &cell;
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        let mut m = AdaptiveLookupManager::new(cell);
                        m.refresh();
                        m.swaps_seen()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 0);
            }
        });
        cell.publish(compile_regions(&s));
        cell.publish(compile_regions(&s));
        let mut m = AdaptiveLookupManager::new(&cell);
        m.refresh();
        assert_eq!(m.swaps_seen(), 0, "constructor already saw epoch 2");
        cell.publish(compile_regions(&s));
        m.refresh();
        m.refresh();
        assert_eq!(m.swaps_seen(), 1, "one publish = one pickup");
    }
}
