//! Smoothness metrics for quality-level sequences.
//!
//! The third QoS requirement of the paper (besides safety and optimality)
//! is *smoothness*: low fluctuation of quality levels across a cycle.
//! Multimedia perception work (the paper cites Schuster et al.'s
//! minimum-maximum criterion) punishes oscillating quality more than
//! uniformly lower quality. The paper defers the formal treatment to its
//! predecessor \[6\]; we provide the standard fluctuation metrics so the
//! ablation benches can compare policies quantitatively.

/// Fluctuation statistics of one quality-level sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Smoothness {
    /// Number of positions where the level changes.
    pub switches: usize,
    /// Sum of |q_{i+1} − q_i| (total variation).
    pub total_variation: usize,
    /// Largest single jump |q_{i+1} − q_i|.
    pub max_jump: usize,
    /// Mean level.
    pub mean: f64,
    /// Population standard deviation of the levels.
    pub std_dev: f64,
    /// Lowest level used (the min-max criterion's objective).
    pub min_level: usize,
    /// Highest level used.
    pub max_level: usize,
}

impl Smoothness {
    /// Compute the metrics of a (possibly empty) quality sequence.
    pub fn of(levels: &[usize]) -> Smoothness {
        if levels.is_empty() {
            return Smoothness {
                switches: 0,
                total_variation: 0,
                max_jump: 0,
                mean: 0.0,
                std_dev: 0.0,
                min_level: 0,
                max_level: 0,
            };
        }
        let mut switches = 0;
        let mut total_variation = 0;
        let mut max_jump = 0;
        for w in levels.windows(2) {
            let jump = w[0].abs_diff(w[1]);
            if jump > 0 {
                switches += 1;
                total_variation += jump;
                max_jump = max_jump.max(jump);
            }
        }
        let n = levels.len() as f64;
        let mean = levels.iter().sum::<usize>() as f64 / n;
        let var = levels
            .iter()
            .map(|&q| (q as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        Smoothness {
            switches,
            total_variation,
            max_jump,
            mean,
            std_dev: var.sqrt(),
            min_level: *levels.iter().min().expect("non-empty"),
            max_level: *levels.iter().max().expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sequence_is_perfectly_smooth() {
        let s = Smoothness::of(&[3, 3, 3, 3]);
        assert_eq!(s.switches, 0);
        assert_eq!(s.total_variation, 0);
        assert_eq!(s.max_jump, 0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!((s.min_level, s.max_level), (3, 3));
    }

    #[test]
    fn oscillation_is_detected() {
        let s = Smoothness::of(&[0, 4, 0, 4]);
        assert_eq!(s.switches, 3);
        assert_eq!(s.total_variation, 12);
        assert_eq!(s.max_jump, 4);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn gentle_ramp_beats_oscillation_in_variation() {
        let ramp = Smoothness::of(&[0, 1, 2, 3, 4]);
        let osc = Smoothness::of(&[0, 4, 0, 4, 0]);
        assert!(ramp.total_variation < osc.total_variation);
        assert!(ramp.max_jump < osc.max_jump);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Smoothness::of(&[]);
        assert_eq!(e.switches, 0);
        assert_eq!(e.mean, 0.0);
        let s = Smoothness::of(&[5]);
        assert_eq!(s.switches, 0);
        assert_eq!(s.mean, 5.0);
        assert_eq!((s.min_level, s.max_level), (5, 5));
    }

    #[test]
    fn std_dev_of_known_distribution() {
        let s = Smoothness::of(&[2, 4]);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
    }
}
