//! The mixed quality-management policy — the paper's contribution (§2.2.2).
//!
//! `CD = Cav + δmax` combines the average behaviour (for smoothness and
//! budget utilization) with a worst-case safety margin:
//!
//! ```text
//! Csf(a_i..a_k, q)  = Cwc(a_i, q) + Σ_{j=i+1..k} Cwc(a_j, qmin)
//! δ(a_j..a_k, q)    = Csf(a_j..a_k, q) − Cav(a_j..a_k, q)
//! δmax(a_i..a_k, q) = max_{i ≤ j ≤ k} δ(a_j..a_k, q)
//! tD(s_i, q)        = min_{k ≥ i, k ∈ dom D} ( D(a_k) − CD(a_i..a_k, q) )
//! ```
//!
//! # Efficient evaluation
//!
//! With prefix sums `Av[q][·]` (average at `q`) and `Wmin[·]` (worst case at
//! `qmin`), the margin separates into a part depending only on the start of
//! the suffix and a part depending only on its end:
//!
//! ```text
//! δ(a_j..a_k, q) = g(j, q) + h(k, q)
//! g(j, q) = Cwc(a_j, q) − Wmin[j+1] + Av[q][j]
//! h(k, q) = Wmin[k+1] − Av[q][k+1]
//! ```
//!
//! so `CD(a_i..a_k, q) = Wmin[k+1] − Av[q][i] + max_{i ≤ j ≤ k} g(j, q)`
//! (equivalently: `CD = max_j [ Cav(a_i..a_{j-1}, q) + Cwc(a_j, q) +
//! Cwc(a_{j+1}..a_k, qmin) ]` — the worst case over which remaining action
//! is the last one still run at quality `q` before degrading to `qmin`).
//! Splitting the `max` at its first element yields the backward recursion
//!
//! ```text
//! T(i) = min( minA(i) − g(i, q),  T(i+1) ),   T(n) = +∞
//! tD(s_i, q) = Av[q][i] + T(i)
//! ```
//!
//! which computes `tD` for *all* states in O(n) per quality level — this is
//! what the offline region compiler uses. The *online numeric* manager of
//! the paper instead re-scans the remaining suffix at every call
//! ([`MixedPolicy::t_d_scan`]), which is exactly the overhead the symbolic
//! method removes.

use crate::policy::Policy;
use crate::quality::Quality;
use crate::system::ParameterizedSystem;
use crate::time::Time;

/// The mixed policy with precomputed `tD` for every `(state, quality)`.
#[derive(Clone, Debug)]
pub struct MixedPolicy<'a> {
    sys: &'a ParameterizedSystem,
    /// `g[q][j]`, nanoseconds, `j ∈ 0..n`.
    g: Vec<Vec<i64>>,
    /// `td[q][i]`, `i ∈ 0..=n` (`td[q][n] = +∞`).
    td: Vec<Vec<Time>>,
}

impl<'a> MixedPolicy<'a> {
    /// Precompute `g` and `tD` in O(n·|Q|).
    pub fn new(sys: &'a ParameterizedSystem) -> MixedPolicy<'a> {
        let n = sys.n_actions();
        let p = sys.prefix();
        let table = sys.table();
        let nq = sys.qualities().len();
        let mut g_all = Vec::with_capacity(nq);
        let mut td_all = Vec::with_capacity(nq);
        for qi in 0..nq {
            let q = Quality::new(qi as u8);
            let g: Vec<i64> = (0..n)
                .map(|j| {
                    table.wc(j, q).as_ns() - p.wc_prefix(Quality::MIN, j + 1) + p.av_prefix(q, j)
                })
                .collect();
            let mut td = vec![Time::INF; n + 1];
            let mut t_next = Time::INF;
            for i in (0..n).rev() {
                // minA(i) is finite for every i < n (the last action is
                // constrained), so the subtraction below never touches the
                // sentinels.
                let candidate = sys.min_a_wcmin(i) - Time::from_ns(g[i]);
                let t_i = candidate.min(t_next);
                td[i] = Time::from_ns(p.av_prefix(q, i)) + t_i;
                t_next = t_i;
            }
            g_all.push(g);
            td_all.push(td);
        }
        MixedPolicy {
            sys,
            g: g_all,
            td: td_all,
        }
    }

    /// The system this policy is defined over.
    #[inline]
    pub fn system(&self) -> &'a ParameterizedSystem {
        self.sys
    }

    /// `δ(a_j..a_k, q)` for the inclusive range `j..=k` (§2.2.2).
    pub fn delta(&self, j: usize, k_incl: usize, q: Quality) -> Time {
        let p = self.sys.prefix();
        let csf = self.sys.table().wc(j, q) + p.wc_range(j + 1, k_incl + 1, Quality::MIN);
        csf - p.av_range(j, k_incl + 1, q)
    }

    /// `δmax(a_i..a_k, q) = max_{i ≤ j ≤ k} δ(a_j..a_k, q)` — the safety
    /// margin of the speed diagram's optimal-speed target. O(k−i) via the
    /// `g + h` decomposition.
    pub fn delta_max(&self, i: usize, k_incl: usize, q: Quality) -> Time {
        let p = self.sys.prefix();
        let g = &self.g[q.index()];
        let gmax = (i..=k_incl).map(|j| g[j]).max().expect("non-empty range");
        let h = p.wc_prefix(Quality::MIN, k_incl + 1) - p.av_prefix(q, k_incl + 1);
        Time::from_ns(gmax + h)
    }

    /// `CD(a_i..a_k, q) = Cav(a_i..a_k, q) + δmax(a_i..a_k, q)`.
    pub fn c_d(&self, i: usize, k_incl: usize, q: Quality) -> Time {
        let p = self.sys.prefix();
        p.av_range(i, k_incl + 1, q) + self.delta_max(i, k_incl, q)
    }

    /// Brute-force `tD` straight from the definitions, O((n−i)²). Used in
    /// tests to validate both the O(1) lookup and the online scan.
    pub fn t_d_naive(&self, state: usize, q: Quality) -> Time {
        let n = self.sys.n_actions();
        if state >= n {
            return Time::INF;
        }
        let mut best = Time::INF;
        for k in state..n {
            if let Some(d) = self.sys.deadlines().get(k) {
                let delta_max = (state..=k)
                    .map(|j| self.delta(j, k, q))
                    .fold(Time::NEG_INF, Time::max);
                let cd = self.sys.prefix().av_range(state, k + 1, q) + delta_max;
                best = best.min(d - cd);
            }
        }
        best
    }
}

impl Policy for MixedPolicy<'_> {
    #[inline]
    fn t_d(&self, state: usize, q: Quality) -> Time {
        self.td[q.index()][state]
    }

    #[allow(clippy::needless_range_loop)] // indices are the paper's k
    fn t_d_scan(&self, state: usize, q: Quality) -> (Time, u64) {
        let n = self.sys.n_actions();
        if state >= n {
            return (Time::INF, 1);
        }
        let p = self.sys.prefix();
        let g = &self.g[q.index()];
        let mut best = Time::INF;
        let mut gmax = i64::MIN;
        let mut work = 0u64;
        for k in state..n {
            work += 1;
            gmax = gmax.max(g[k]);
            if let Some(d) = self.sys.deadlines().get(k) {
                // CD = Wmin[k+1] − Av[q][state] + gmax
                let cd = p.wc_prefix(Quality::MIN, k + 1) - p.av_prefix(q, state) + gmax;
                best = best.min(d - Time::from_ns(cd));
            }
        }
        (best, work)
    }

    fn name(&self) -> &'static str {
        "mixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemBuilder;

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(3)
            .action("a", &[10, 25, 40], &[4, 9, 14])
            .action("b", &[12, 22, 35], &[6, 11, 17])
            .action("c", &[8, 18, 28], &[3, 8, 12])
            .action("d", &[15, 24, 33], &[7, 12, 16])
            .deadline_last(Time::from_ns(120))
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_scan_and_naive_agree() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        for state in 0..=4 {
            for qi in 0..3 {
                let q = Quality::new(qi);
                let fast = p.t_d(state, q);
                let (scan, _) = p.t_d_scan(state, q);
                let naive = p.t_d_naive(state, q);
                assert_eq!(fast, naive, "state {state} {q}");
                assert_eq!(scan, naive, "state {state} {q}");
            }
        }
    }

    #[test]
    fn agree_with_intermediate_deadlines() {
        let s = SystemBuilder::new(2)
            .action("a", &[10, 30], &[5, 15])
            .action("b", &[10, 30], &[5, 15])
            .action("c", &[10, 30], &[5, 15])
            .deadline(0, Time::from_ns(35))
            .deadline(1, Time::from_ns(70))
            .deadline_last(Time::from_ns(105))
            .build()
            .unwrap();
        let p = MixedPolicy::new(&s);
        for state in 0..=3 {
            for qi in 0..2 {
                let q = Quality::new(qi);
                assert_eq!(p.t_d(state, q), p.t_d_naive(state, q));
                assert_eq!(p.t_d_scan(state, q).0, p.t_d_naive(state, q));
            }
        }
    }

    #[test]
    fn non_increasing_in_quality() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        for state in 0..4 {
            for qi in 1..3 {
                assert!(
                    p.t_d(state, Quality::new(qi)) <= p.t_d(state, Quality::new(qi - 1)),
                    "tD non-increasing in q at state {state}"
                );
            }
        }
    }

    #[test]
    fn delta_is_nonnegative() {
        // δ = Csf − Cav ≥ 0 because Cav(a,q) ≤ Cwc(a,q) and
        // Cav(a,q') ≤ Cwc(a,qmin) is NOT generally true — but δ over a
        // single action δ(a_k..a_k, q) = Cwc(a_k,q) − Cav(a_k,q) ≥ 0, so
        // δmax ≥ 0 always.
        let s = sys();
        let p = MixedPolicy::new(&s);
        for i in 0..4 {
            for k in i..4 {
                for qi in 0..3 {
                    let q = Quality::new(qi);
                    assert!(
                        p.delta_max(i, k, q) >= Time::ZERO,
                        "δmax(a{i}..a{k}, {q}) ≥ 0"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_is_between_safe_and_average() {
        use crate::policy::{AveragePolicy, SafePolicy};
        let s = sys();
        let mixed = MixedPolicy::new(&s);
        let safe = SafePolicy::new(&s);
        let avg = AveragePolicy::new(&s);
        for state in 0..4 {
            for qi in 0..3 {
                let q = Quality::new(qi);
                // CD ≥ Cav pointwise ⇒ tD_mixed ≤ tD_avg.
                assert!(mixed.t_d(state, q) <= avg.t_d(state, q));
                // δmax includes j = state: CD ≥ Csf(state..k) ⇒ tD_mixed ≤ tD_safe.
                assert!(mixed.t_d(state, q) <= safe.t_d(state, q));
            }
        }
    }

    #[test]
    fn cd_alternative_max_form() {
        // CD(i..k,q) = max_j [ Cav(i..j−1,q) + Cwc(a_j,q) + Wmin(j+1..k) ].
        let s = sys();
        let p = MixedPolicy::new(&s);
        let pf = s.prefix();
        for i in 0..4 {
            for k in i..4 {
                for qi in 0..3 {
                    let q = Quality::new(qi);
                    let alt = (i..=k)
                        .map(|j| {
                            pf.av_range(i, j, q)
                                + s.table().wc(j, q)
                                + pf.wc_range(j + 1, k + 1, Quality::MIN)
                        })
                        .fold(Time::NEG_INF, Time::max);
                    assert_eq!(p.c_d(i, k, q), alt, "CD max-form, i={i} k={k} {q}");
                }
            }
        }
    }

    #[test]
    fn scan_work_is_suffix_length() {
        let s = sys();
        let p = MixedPolicy::new(&s);
        assert_eq!(p.t_d_scan(0, Quality::MIN).1, 4);
        assert_eq!(p.t_d_scan(3, Quality::MIN).1, 1);
        assert_eq!(p.t_d_scan(4, Quality::MIN).1, 1);
    }
}
