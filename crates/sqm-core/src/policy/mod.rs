//! Quality-management policies.
//!
//! A policy is the function `tD : S × Q → Time` of §2.2: for a state `s_i`
//! (we index states `0..=n`, state `i` meaning *`i` actions completed, the
//! next action is `a_i`*) and a quality level `q`, `tD(s_i, q)` is the
//! **latest elapsed cycle time** at which the remaining sequence can still
//! be started at quality `q` while satisfying the policy's constraint. The
//! Quality Manager then picks
//! `Γ(s_i, t) = max { q | tD(s_i, q) ≥ t }`.
//!
//! Three policies are provided:
//!
//! * [`SafePolicy`] — worst-case based (`Csf`), guarantees deadlines but
//!   produces wild quality fluctuation (high early, collapsing late);
//! * [`AveragePolicy`] — average-case based, smooth and optimistic but
//!   **unsafe** (can miss deadlines); included as the paper's implicit
//!   soft-real-time baseline;
//! * [`MixedPolicy`] — the paper's contribution: `CD = Cav + δmax`, safe
//!   *and* smooth.
//!
//! All three satisfy: `tD` is non-increasing in `q` (higher quality can only
//! shrink the admissible start window), which is what makes quality regions
//! (Proposition 2) intervals.

mod average;
mod mixed;
mod safe;

pub use average::AveragePolicy;
pub use mixed::MixedPolicy;
pub use safe::SafePolicy;

use crate::quality::Quality;
use crate::time::Time;

/// A quality-management policy: the function `tD(s_i, q)`.
pub trait Policy {
    /// `tD(state, q)` — O(1) after construction-time precomputation.
    ///
    /// `state` ranges over `0..=n`; `tD(n, q) = +∞` by convention (no action
    /// remains, nothing to constrain).
    fn t_d(&self, state: usize, q: Quality) -> Time;

    /// `tD(state, q)` computed by an **online scan over the remaining
    /// suffix**, together with the number of elementary work units (range
    /// evaluations) spent. This models the paper's *numeric* Quality Manager
    /// whose per-call cost grows with the number of remaining actions —
    /// the cost the symbolic managers eliminate.
    ///
    /// The returned value must equal [`Policy::t_d`] exactly.
    fn t_d_scan(&self, state: usize, q: Quality) -> (Time, u64) {
        (self.t_d(state, q), 1)
    }

    /// A short, stable identifier for reports.
    fn name(&self) -> &'static str;
}

/// The quality chosen by the paper's Quality Manager under a policy:
/// `max { q | tD(state, q) ≥ t }`, or `None` if even `qmin` fails (the
/// caller decides how to degrade; the runtime managers fall back to `qmin`
/// and flag the violation).
///
/// Scans from `qmax` downward, exactly like the online implementations, and
/// also returns the work spent when `scan` is true.
pub fn choose_quality<P: Policy + ?Sized>(
    policy: &P,
    n_quality: usize,
    state: usize,
    t: Time,
) -> Option<Quality> {
    (0..n_quality)
        .rev()
        .map(|qi| Quality::new(qi as u8))
        .find(|&q| policy.t_d(state, q) >= t)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy policy with hand-written thresholds, to pin down the contract
    /// of `choose_quality` itself.
    struct Toy;
    impl Policy for Toy {
        fn t_d(&self, _state: usize, q: Quality) -> Time {
            // thresholds: q0 → 30, q1 → 20, q2 → 10 (non-increasing in q)
            Time::from_ns(30 - 10 * q.index() as i64)
        }
        fn name(&self) -> &'static str {
            "toy"
        }
    }

    #[test]
    fn chooses_maximal_satisfying_quality() {
        assert_eq!(
            choose_quality(&Toy, 3, 0, Time::from_ns(5)),
            Some(Quality::new(2))
        );
        assert_eq!(
            choose_quality(&Toy, 3, 0, Time::from_ns(10)),
            Some(Quality::new(2))
        );
        assert_eq!(
            choose_quality(&Toy, 3, 0, Time::from_ns(11)),
            Some(Quality::new(1))
        );
        assert_eq!(
            choose_quality(&Toy, 3, 0, Time::from_ns(25)),
            Some(Quality::new(0))
        );
        assert_eq!(choose_quality(&Toy, 3, 0, Time::from_ns(31)), None);
    }

    #[test]
    fn default_scan_matches_t_d() {
        let (v, w) = Toy.t_d_scan(0, Quality::new(1));
        assert_eq!(v, Time::from_ns(20));
        assert_eq!(w, 1);
    }
}
