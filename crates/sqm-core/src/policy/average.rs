//! The average-case policy (soft-real-time baseline).
//!
//! `CD = Cav`: estimate the remaining work by *average* execution times
//! only. This is what a pure soft-real-time controller does — it maximizes
//! smoothness and budget utilization in the expected case but offers **no
//! safety guarantee**: a run of worse-than-average actions can blow the
//! deadline. The paper's mixed policy exists precisely to fix this; we keep
//! the average policy as a baseline for the ablation benches.
//!
//! With `Av[q][x]` the prefix sums of `Cav(·, q)`:
//!
//! ```text
//! tD_av(s_i, q) = Av[q][i] + min_{k ≥ i, k ∈ dom D} ( D(a_k) − Av[q][k+1] )
//! ```

use crate::action::DeadlineMap;
use crate::policy::Policy;
use crate::prefix::DeadlineSuffixMin;
use crate::quality::Quality;
use crate::system::ParameterizedSystem;
use crate::time::Time;

/// Average-times-only policy. O(1) per query after O(n·|Q|) precomputation.
#[derive(Clone, Debug)]
pub struct AveragePolicy<'a> {
    sys: &'a ParameterizedSystem,
    /// Per quality: `min_{k ≥ i, k ∈ dom D} (D(a_k) − Av[q][k+1])`.
    min_a_av: Vec<DeadlineSuffixMin>,
}

impl<'a> AveragePolicy<'a> {
    /// Precompute the per-quality deadline suffix minima.
    pub fn new(sys: &'a ParameterizedSystem) -> AveragePolicy<'a> {
        let n = sys.n_actions();
        let min_a_av = sys
            .qualities()
            .iter()
            .map(|q| {
                let prefix: Vec<i64> = (0..=n).map(|x| sys.prefix().av_prefix(q, x)).collect();
                DeadlineSuffixMin::new(&prefix, sys.deadlines())
            })
            .collect();
        AveragePolicy { sys, min_a_av }
    }

    fn deadlines(&self) -> &DeadlineMap {
        self.sys.deadlines()
    }
}

impl Policy for AveragePolicy<'_> {
    fn t_d(&self, state: usize, q: Quality) -> Time {
        let n = self.sys.n_actions();
        if state >= n {
            return Time::INF;
        }
        let av_i = Time::from_ns(self.sys.prefix().av_prefix(q, state));
        av_i + self.min_a_av[q.index()].at(state)
    }

    fn t_d_scan(&self, state: usize, q: Quality) -> (Time, u64) {
        let n = self.sys.n_actions();
        if state >= n {
            return (Time::INF, 1);
        }
        let p = self.sys.prefix();
        let mut best = Time::INF;
        let mut work = 0u64;
        for k in state..n {
            work += 1;
            if let Some(d) = self.deadlines().get(k) {
                best = best.min(d - p.av_range(state, k + 1, q));
            }
        }
        (best, work)
    }

    fn name(&self) -> &'static str {
        "average"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemBuilder;

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(2)
            .action("a", &[20, 40], &[10, 20])
            .action("b", &[20, 40], &[10, 20])
            .deadline_last(Time::from_ns(60))
            .build()
            .unwrap()
    }

    #[test]
    fn closed_form_matches_scan() {
        let s = sys();
        let p = AveragePolicy::new(&s);
        for state in 0..=2 {
            for qi in 0..2 {
                let q = Quality::new(qi);
                assert_eq!(p.t_d(state, q), p.t_d_scan(state, q).0);
            }
        }
    }

    #[test]
    fn hand_computed_values() {
        let s = sys();
        let p = AveragePolicy::new(&s);
        // state 0, q1: Cav(0..=1, q1) = 40 → tD = 20.
        assert_eq!(p.t_d(0, Quality::new(1)), Time::from_ns(20));
        // state 1, q1: Cav = 20 → tD = 40.
        assert_eq!(p.t_d(1, Quality::new(1)), Time::from_ns(40));
        assert_eq!(p.t_d(2, Quality::new(0)), Time::INF);
    }

    #[test]
    fn optimistic_compared_to_safe() {
        use crate::policy::SafePolicy;
        let s = sys();
        let avg = AveragePolicy::new(&s);
        let safe = SafePolicy::new(&s);
        // Average times are below worst case, so the average policy always
        // believes it has at least as much room as the safe one.
        for state in 0..2 {
            for qi in 0..2 {
                let q = Quality::new(qi);
                assert!(avg.t_d(state, q) >= safe.t_d(state, q));
            }
        }
    }

    #[test]
    fn non_increasing_in_quality() {
        let s = sys();
        let p = AveragePolicy::new(&s);
        for state in 0..2 {
            assert!(p.t_d(state, Quality::new(1)) <= p.t_d(state, Quality::new(0)));
        }
    }
}
