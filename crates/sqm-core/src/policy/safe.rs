//! The safe (worst-case) policy.
//!
//! §2.2.2: `Csf(a_i..a_k, q) = Cwc(a_i, q) + Cwc(a_{i+1}..a_k, qmin)` — the
//! next action runs at quality `q`, everything after it is accounted at the
//! *minimal* quality's worst case (the manager can always downgrade later).
//!
//! With `Wmin[x]` the prefix sums of `Cwc(·, qmin)` and
//! `minA(i) = min_{k ≥ i, k ∈ dom D} (D(a_k) − Wmin[k+1])` (precomputed by
//! the system), the policy evaluates in O(1):
//!
//! ```text
//! tD_sf(s_i, q) = minA(i) + Wmin[i+1] − Cwc(a_i, q)
//! ```
//!
//! This policy is safe but not smooth: it starts cycles optimistically and
//! collapses to low quality whenever the worst-case tail looms.

use crate::policy::Policy;
use crate::quality::Quality;
use crate::system::ParameterizedSystem;
use crate::time::Time;

/// Worst-case-only policy (`CD = Csf`). O(1) per query, no precomputation
/// beyond what [`ParameterizedSystem`] already holds.
#[derive(Clone, Debug)]
pub struct SafePolicy<'a> {
    sys: &'a ParameterizedSystem,
}

impl<'a> SafePolicy<'a> {
    /// A safe policy over `sys`.
    pub fn new(sys: &'a ParameterizedSystem) -> SafePolicy<'a> {
        SafePolicy { sys }
    }

    /// `Csf(a_lo..=a_hi, q)` — total safe execution-time estimate of the
    /// inclusive action range starting at quality `q`.
    pub fn c_sf(&self, lo: usize, hi_incl: usize, q: Quality) -> Time {
        let p = self.sys.prefix();
        self.sys.table().wc(lo, q) + p.wc_range(lo + 1, hi_incl + 1, Quality::MIN)
    }
}

impl Policy for SafePolicy<'_> {
    fn t_d(&self, state: usize, q: Quality) -> Time {
        let n = self.sys.n_actions();
        if state >= n {
            return Time::INF;
        }
        let p = self.sys.prefix();
        let min_a = self.sys.min_a_wcmin(state);
        min_a + Time::from_ns(p.wc_prefix(Quality::MIN, state + 1)) - self.sys.table().wc(state, q)
    }

    fn t_d_scan(&self, state: usize, q: Quality) -> (Time, u64) {
        // The faithful online evaluation: min over remaining constrained
        // actions of D(a_k) − Csf(a_state..a_k, q).
        let n = self.sys.n_actions();
        if state >= n {
            return (Time::INF, 1);
        }
        let mut best = Time::INF;
        let mut work = 0u64;
        for k in state..n {
            work += 1;
            if let Some(d) = self.sys.deadlines().get(k) {
                best = best.min(d - self.c_sf(state, k, q));
            }
        }
        (best, work)
    }

    fn name(&self) -> &'static str {
        "safe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemBuilder;

    fn sys() -> ParameterizedSystem {
        SystemBuilder::new(3)
            .action("a", &[10, 20, 30], &[5, 10, 15])
            .action("b", &[10, 20, 30], &[5, 10, 15])
            .action("c", &[10, 20, 30], &[5, 10, 15])
            .deadline_last(Time::from_ns(90))
            .build()
            .unwrap()
    }

    #[test]
    fn closed_form_matches_scan() {
        let s = sys();
        let p = SafePolicy::new(&s);
        for state in 0..=3 {
            for qi in 0..3 {
                let q = Quality::new(qi);
                let (scan, work) = p.t_d_scan(state, q);
                assert_eq!(p.t_d(state, q), scan, "state {state}, {q}");
                if state < 3 {
                    assert_eq!(work, (3 - state) as u64);
                }
            }
        }
    }

    #[test]
    fn hand_computed_values() {
        let s = sys();
        let p = SafePolicy::new(&s);
        // state 0, q2: Csf(0..=2, q2) = 30 + 10 + 10 = 50; tD = 90 − 50 = 40.
        assert_eq!(p.t_d(0, Quality::new(2)), Time::from_ns(40));
        // state 2, q0: Csf = 10; tD = 80.
        assert_eq!(p.t_d(2, Quality::new(0)), Time::from_ns(80));
        // state 2, q2: Csf = 30; tD = 60.
        assert_eq!(p.t_d(2, Quality::new(2)), Time::from_ns(60));
        // Past the end: unconstrained.
        assert_eq!(p.t_d(3, Quality::new(0)), Time::INF);
    }

    #[test]
    fn non_increasing_in_quality() {
        let s = sys();
        let p = SafePolicy::new(&s);
        for state in 0..3 {
            for qi in 1..3 {
                assert!(
                    p.t_d(state, Quality::new(qi)) <= p.t_d(state, Quality::new(qi - 1)),
                    "tD must be non-increasing in q"
                );
            }
        }
    }

    #[test]
    fn respects_intermediate_deadlines() {
        let s = SystemBuilder::new(2)
            .action("a", &[10, 40], &[5, 20])
            .action("b", &[10, 40], &[5, 20])
            .deadline(0, Time::from_ns(45))
            .deadline_last(Time::from_ns(200))
            .build()
            .unwrap();
        let p = SafePolicy::new(&s);
        // state 0, q1: binding constraint is k=0: 45 − Cwc(a0,q1)=45−40=5,
        // vs k=1: 200 − (40 + 10) = 150.
        assert_eq!(p.t_d(0, Quality::new(1)), Time::from_ns(5));
    }
}
