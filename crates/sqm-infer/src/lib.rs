//! # sqm-infer — inference-serving workload with continuous batching
//!
//! A fourth application domain for the quality-management method, and the
//! first whose execution times are **coupled across the batch**: an
//! LLM-style serving engine admits requests into a continuous batch, and
//! every admitted request shares the accelerator's per-step decode
//! kernels. One cycle serves a batch of requests through two atomic
//! actions each:
//!
//! 1. **prefill** — process the prompt, admit the request into the batch;
//! 2. **decode** — generate the answer tokens against the co-batched load.
//!
//! The scalar quality level decomposes through a [`ladder::InferLadder`]
//! into three monotone levers — model variant × quantization width ×
//! admission depth — so execution times are non-decreasing in quality
//! exactly as Definition 1 requires. Deadlines are **SLO classes** rather
//! than a single frame deadline: interactive slots carry a tight p99
//! budget, bulk slots a looser p999 budget, mapped onto per-action
//! deadline classes through [`sqm_core::action::DeadlineMap`].
//!
//! The piece the MPEG, audio, and network domains do not have is
//! [`pipeline::BatchCoupledExec`]: a decode's actual time scales with the
//! **mean admitted depth** of the batch at the moment it runs, so one
//! request's quality choice changes every co-batched neighbour's cost —
//! and the manager's per-action downgrade decisions visibly ripple
//! through the batch while every conformance path (serial, trace-replay,
//! fleet, streaming, elastic) stays byte-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ladder;
pub mod pipeline;
pub mod request;

pub use ladder::{InferLadder, InferRung, ModelVariant, Quantization};
pub use pipeline::{
    coupling_factor, BatchCoupledExec, BatchState, InferConfig, InferPhase, InferPipeline, SloClass,
};
pub use request::{Request, SyntheticRequests};
