//! Deterministic synthetic request population.
//!
//! The coupled execution source needs per-request structure — prompt
//! length, answer verbosity, prefix-cache affinity — that is (a) stable
//! for a given (cycle, slot) so every execution path replays the same
//! request, and (b) varied enough across tenants that the batch actually
//! exercises the coupling seam. [`SyntheticRequests`] derives all of it
//! from a seed with splitmix64, so serial, fleet, and elastic runs
//! observe byte-identical populations without sharing any state.

/// One synthesized request as seen by the serving engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Originating tenant (stable per flow slot).
    pub tenant: u32,
    /// Prompt length in tokens; drives the prefill phase.
    pub prompt_tokens: u32,
    /// Answer verbosity factor in `[0.5, 1.5]`; drives the decode phase.
    pub verbosity: f64,
    /// Prefix-cache hit fraction in `[0.0, 0.8]`; discounts prefill work.
    pub cache_hit: f64,
}

/// splitmix64 — tiny, seedable, and good enough for workload synthesis.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to a unit-interval f64 (53 mantissa bits).
fn unit(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic request generator for a serving batch.
///
/// # Examples
///
/// ```
/// use sqm_infer::request::SyntheticRequests;
///
/// let gen = SyntheticRequests::new(16, 128, 42);
/// let r = gen.request(3, 5);
/// // Same (cycle, slot) always replays the same request.
/// assert_eq!(gen.request(3, 5), r);
/// assert!(r.prompt_tokens >= 8);
/// assert!((0.5..=1.5).contains(&r.verbosity));
/// assert!((0.0..=0.8).contains(&r.cache_hit));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SyntheticRequests {
    n_tenants: u32,
    nominal_prompt: u32,
    seed: u64,
}

impl SyntheticRequests {
    /// A population of `n_tenants` tenants whose prompts centre on
    /// `nominal_prompt` tokens, derived entirely from `seed`.
    pub fn new(n_tenants: u32, nominal_prompt: u32, seed: u64) -> SyntheticRequests {
        SyntheticRequests {
            n_tenants: n_tenants.max(1),
            nominal_prompt: nominal_prompt.max(8),
            seed,
        }
    }

    /// Which tenant occupies batch `slot` in `cycle`. The phase shift per
    /// cycle rotates tenants through slots so every slot sees the whole
    /// population over time.
    pub fn tenant_of(&self, cycle: u64, slot: usize) -> u32 {
        let shift = splitmix64(self.seed ^ cycle.wrapping_mul(0x517c_c1b7_2722_0a95));
        ((slot as u64).wrapping_add(shift) % self.n_tenants as u64) as u32
    }

    /// The request occupying batch `slot` in `cycle`.
    ///
    /// Tenant-level biases are stable across cycles (a chatty tenant stays
    /// chatty); a per-(cycle, slot) wobble keeps individual requests
    /// distinct.
    pub fn request(&self, cycle: u64, slot: usize) -> Request {
        let tenant = self.tenant_of(cycle, slot);
        let tkey = self.seed ^ (tenant as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
        // Stable tenant biases.
        let prompt_bias = 0.4 + 1.4 * unit(tkey ^ 0x01);
        let verbosity_bias = 0.5 + 1.0 * unit(tkey ^ 0x02);
        let cache_bias = 0.8 * unit(tkey ^ 0x03);
        // Per-request wobble.
        let rkey = self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ cycle.wrapping_mul(0xff51_afd7_ed55_8ccd)
            ^ (slot as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        let wobble = 0.7 + 0.6 * unit(rkey ^ 0x11);
        let nominal = self.nominal_prompt as f64;
        let prompt_tokens = (nominal * prompt_bias * wobble)
            .round()
            .clamp(8.0, 4.0 * nominal) as u32;
        Request {
            tenant,
            prompt_tokens,
            verbosity: (verbosity_bias + 0.1 * (unit(rkey ^ 0x12) - 0.5)).clamp(0.5, 1.5),
            cache_hit: (cache_bias + 0.1 * (unit(rkey ^ 0x13) - 0.5)).clamp(0.0, 0.8),
        }
    }

    /// Number of tenants in the population.
    pub fn n_tenants(&self) -> u32 {
        self.n_tenants
    }

    /// Nominal prompt length the population centres on.
    pub fn nominal_prompt(&self) -> u32 {
        self.nominal_prompt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_deterministic_and_seed_sensitive() {
        let a = SyntheticRequests::new(16, 128, 7);
        let b = SyntheticRequests::new(16, 128, 7);
        let c = SyntheticRequests::new(16, 128, 8);
        let mut diverged = false;
        for cycle in 0..8 {
            for slot in 0..16 {
                assert_eq!(a.request(cycle, slot), b.request(cycle, slot));
                if a.request(cycle, slot) != c.request(cycle, slot) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds must generate different traffic");
    }

    #[test]
    fn requests_honour_the_contract_ranges() {
        let reqs = SyntheticRequests::new(12, 128, 99);
        for cycle in 0..32 {
            for slot in 0..16 {
                let r = reqs.request(cycle, slot);
                assert!(r.tenant < reqs.n_tenants());
                assert!((8..=512).contains(&r.prompt_tokens), "{r:?}");
                assert!((0.5..=1.5).contains(&r.verbosity), "{r:?}");
                assert!((0.0..=0.8).contains(&r.cache_hit), "{r:?}");
            }
        }
    }

    #[test]
    fn tenant_rotation_covers_the_population() {
        let reqs = SyntheticRequests::new(8, 64, 3);
        let mut seen = [false; 8];
        for cycle in 0..64 {
            for slot in 0..4 {
                seen[reqs.tenant_of(cycle, slot) as usize] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "all tenants should appear in some slot: {seen:?}"
        );
    }

    #[test]
    fn tenant_biases_are_stable_across_cycles() {
        let reqs = SyntheticRequests::new(4, 128, 21);
        // Collect the per-tenant mean prompt length over many cycles; a
        // biased tenant must stay biased (spread between tenants visible).
        let mut sums = [0.0f64; 4];
        let mut counts = [0u32; 4];
        for cycle in 0..256 {
            for slot in 0..4 {
                let r = reqs.request(cycle, slot);
                sums[r.tenant as usize] += r.prompt_tokens as f64;
                counts[r.tenant as usize] += 1;
            }
        }
        let means: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| s / c.max(1) as f64)
            .collect();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            hi / lo > 1.1,
            "tenant biases should spread the means: {means:?}"
        );
    }
}
