//! The per-request quality ladder of the serving workload.
//!
//! The paper's quality level is one scalar; an inference server spends its
//! latency budget on three levers at once — which **model variant** to
//! route the request to, at what **quantization width** to run it, and how
//! deep into the continuous batch to **admit** it. An [`InferLadder`] maps
//! each scalar quality level to one [`InferRung`] fixing all three,
//! **monotone in every lever**, so Definition 1's non-decreasing execution
//! times hold by construction: stepping the manager's quality up never
//! makes a phase cheaper — a bigger model, a wider numeric format, and a
//! deeper batch all cost more per token.

use sqm_core::quality::Quality;

/// Which model variant serves the request — the dominant cost lever.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ModelVariant {
    /// Distilled student model (cheapest, lowest answer quality).
    Distilled,
    /// Small production model.
    Small,
    /// The base model.
    Base,
    /// The large flagship model.
    Large,
}

impl ModelVariant {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ModelVariant::Distilled => "distilled",
            ModelVariant::Small => "small",
            ModelVariant::Base => "base",
            ModelVariant::Large => "large",
        }
    }

    /// Relative per-token compute weight (distilled = 1.0).
    pub fn weight(self) -> f64 {
        match self {
            ModelVariant::Distilled => 1.0,
            ModelVariant::Small => 1.5,
            ModelVariant::Base => 2.4,
            ModelVariant::Large => 3.5,
        }
    }
}

/// Numeric width the variant's weights run at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Quantization {
    /// 4-bit integer weights (cheapest, most lossy).
    Int4,
    /// 8-bit integer weights.
    Int8,
    /// Half-precision floating point (full answer quality).
    Fp16,
}

impl Quantization {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Quantization::Int4 => "int4",
            Quantization::Int8 => "int8",
            Quantization::Fp16 => "fp16",
        }
    }

    /// Weight bits per parameter.
    pub fn bits(self) -> u32 {
        match self {
            Quantization::Int4 => 4,
            Quantization::Int8 => 8,
            Quantization::Fp16 => 16,
        }
    }

    /// Relative per-token compute weight (int8 = 1.0; int4 kernels are
    /// cheaper, fp16 moves twice the bytes).
    pub fn weight(self) -> f64 {
        match self {
            Quantization::Int4 => 0.6,
            Quantization::Int8 => 1.0,
            Quantization::Fp16 => 1.8,
        }
    }
}

/// One rung of the ladder: the lever settings of a single quality level.
///
/// # Examples
///
/// ```
/// use sqm_infer::ladder::{InferLadder, ModelVariant, Quantization};
/// use sqm_core::quality::Quality;
///
/// let ladder = InferLadder::standard(5);
/// let top = ladder.rung(Quality::new(4));
/// assert_eq!(top.model, ModelVariant::Large);
/// assert_eq!(top.quant, Quantization::Fp16);
/// assert_eq!(top.batch_depth, 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InferRung {
    /// Model variant the request is routed to.
    pub model: ModelVariant,
    /// Quantization width it runs at.
    pub quant: Quantization,
    /// How many requests the scheduler may co-batch with this one
    /// (`1` = the request decodes alone).
    pub batch_depth: usize,
}

impl InferRung {
    /// Combined per-token compute weight of the model × quantization
    /// levers (the batch-depth lever acts through
    /// [`coupling_factor`](crate::pipeline::coupling_factor) instead).
    pub fn cost_weight(self) -> f64 {
        self.model.weight() * self.quant.weight()
    }
}

/// Maps scalar quality levels to lever settings, monotone per lever.
///
/// # Examples
///
/// ```
/// use sqm_infer::ladder::InferLadder;
///
/// let ladder = InferLadder::standard(5);
/// assert_eq!(ladder.len(), 5);
/// for pair in ladder.rungs().windows(2) {
///     assert!(pair[1].model >= pair[0].model);
///     assert!(pair[1].quant >= pair[0].quant);
///     assert!(pair[1].batch_depth >= pair[0].batch_depth);
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InferLadder {
    rungs: Vec<InferRung>,
}

impl InferLadder {
    /// The standard ladder for `n` quality levels (`n ≥ 1`): levers ramp
    /// from (distilled, int4, solo decode) at the bottom to (large, fp16,
    /// 8-deep continuous batch) at the top.
    pub fn standard(n: usize) -> InferLadder {
        let n = n.max(1);
        let rungs = (0..n)
            .map(|q| {
                // Position in [0, 1] (a single rung sits at the bottom).
                let t = if n == 1 {
                    0.0
                } else {
                    q as f64 / (n - 1) as f64
                };
                let model = match (t * 3.0).round() as usize {
                    0 => ModelVariant::Distilled,
                    1 => ModelVariant::Small,
                    2 => ModelVariant::Base,
                    _ => ModelVariant::Large,
                };
                let quant = match (t * 2.0).round() as usize {
                    0 => Quantization::Int4,
                    1 => Quantization::Int8,
                    _ => Quantization::Fp16,
                };
                InferRung {
                    model,
                    quant,
                    batch_depth: 1 + (t * 7.0).round() as usize,
                }
            })
            .collect();
        InferLadder { rungs }
    }

    /// Number of rungs (= quality levels).
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// `true` for an empty ladder (never produced by the constructors).
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// The rung of a quality level (clamped to the top).
    pub fn rung(&self, q: Quality) -> InferRung {
        self.rungs[q.index().min(self.rungs.len() - 1)]
    }

    /// All rungs, bottom to top.
    pub fn rungs(&self) -> &[InferRung] {
        &self.rungs
    }

    /// The deepest admission any rung allows — the worst-case co-batch
    /// load a decode can observe.
    pub fn max_depth(&self) -> usize {
        self.rungs.iter().map(|r| r.batch_depth).max().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_ladder_is_monotone_in_every_lever() {
        for n in 1..=9 {
            let ladder = InferLadder::standard(n);
            assert_eq!(ladder.len(), n);
            for w in ladder.rungs().windows(2) {
                assert!(w[1].model >= w[0].model, "model monotone");
                assert!(w[1].quant >= w[0].quant, "quant monotone");
                assert!(w[1].batch_depth >= w[0].batch_depth, "depth monotone");
                assert!(
                    w[1].cost_weight() >= w[0].cost_weight(),
                    "cost weight monotone"
                );
            }
        }
    }

    #[test]
    fn ladder_spans_the_lever_ranges() {
        let ladder = InferLadder::standard(5);
        let bottom = ladder.rungs()[0];
        let top = ladder.rungs()[4];
        assert_eq!(bottom.model, ModelVariant::Distilled);
        assert_eq!(top.model, ModelVariant::Large);
        assert_eq!(bottom.quant, Quantization::Int4);
        assert_eq!(top.quant, Quantization::Fp16);
        assert_eq!(bottom.batch_depth, 1);
        assert_eq!(top.batch_depth, 8);
        assert_eq!(ladder.max_depth(), 8);
    }

    #[test]
    fn rung_lookup_clamps() {
        let ladder = InferLadder::standard(3);
        assert_eq!(ladder.rung(Quality::new(9)), ladder.rungs()[2]);
        assert!(!ladder.is_empty());
        assert!(ModelVariant::Large.weight() > ModelVariant::Distilled.weight());
        assert!(Quantization::Fp16.bits() > Quantization::Int4.bits());
        assert_eq!(Quantization::Int8.label(), "int8");
        assert_eq!(ModelVariant::Base.label(), "base");
    }
}
