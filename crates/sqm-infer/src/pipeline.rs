//! The inference batch as a parameterized system, with a batch-coupled
//! execution-time source.
//!
//! One cycle serves a **batch** of requests through two atomic actions
//! each — **prefill** (process the prompt, admit the request into the
//! continuous batch) and **decode** (generate the answer tokens). The
//! twist the other workloads do not have: decode cost is *coupled* across
//! the batch. Every admitted request shares the accelerator's per-step
//! kernels, so a decode's per-token time scales with the **mean admitted
//! batch depth** at the moment it runs ([`coupling_factor`]), not with the
//! request's own rung alone. [`BatchCoupledExec`] carries that shared
//! [`BatchState`] through the cycle: each prefill admits its rung's depth,
//! each decode observes the mean admitted so far — later decodes see a
//! fuller batch, which is exactly continuous batching's behaviour.
//!
//! Deadlines are SLO classes, not a single frame deadline: interactive
//! slots must finish within the p99 budget, bulk slots within twice that
//! (their p999 ladder). Each slot's cumulative budget lands on its decode
//! action through [`sqm_core::action::DeadlineMap`], so the manager
//! downgrades exactly the requests whose SLO is at risk.

use crate::ladder::{InferLadder, InferRung};
use crate::request::{Request, SyntheticRequests};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqm_core::action::{ActionId, ActionInfo, DeadlineMap};
use sqm_core::controller::ExecutionTimeSource;
use sqm_core::error::BuildError;
use sqm_core::quality::Quality;
use sqm_core::system::ParameterizedSystem;
use sqm_core::time::Time;
use sqm_core::timing::TimeTableBuilder;

/// Calibrated average prefill cost per prompt token, in nanoseconds, for
/// the distilled/int4 reference rung.
pub const PREFILL_NS_PER_TOKEN: f64 = 400.0;

/// Calibrated average decode cost per generated token, in nanoseconds,
/// for the distilled/int4 reference rung decoding alone.
pub const DECODE_NS_PER_TOKEN: f64 = 3_000.0;

/// Marginal per-token decode cost of each extra co-batched request.
pub const COUPLING_PER_REQUEST: f64 = 0.15;

/// Decode cost multiplier of a continuous batch `depth` requests deep
/// (`1.0` for a request decoding alone; linear in the extra occupants).
///
/// # Examples
///
/// ```
/// use sqm_infer::pipeline::coupling_factor;
/// assert_eq!(coupling_factor(1.0), 1.0);
/// assert!(coupling_factor(8.0) > coupling_factor(3.0));
/// ```
pub fn coupling_factor(depth: f64) -> f64 {
    1.0 + COUPLING_PER_REQUEST * (depth - 1.0).max(0.0)
}

/// Serving phase of a request action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InferPhase {
    /// Prompt processing; admits the request into the continuous batch.
    Prefill,
    /// Token generation against the co-batched load.
    Decode,
}

impl InferPhase {
    /// Kind tag stored in [`ActionInfo::kind`].
    pub fn kind(self) -> u32 {
        match self {
            InferPhase::Prefill => 0,
            InferPhase::Decode => 1,
        }
    }

    fn from_kind(kind: u32) -> InferPhase {
        match kind {
            0 => InferPhase::Prefill,
            _ => InferPhase::Decode,
        }
    }

    /// Display label (also the action-name suffix).
    pub fn label(self) -> &'static str {
        match self {
            InferPhase::Prefill => "prefill",
            InferPhase::Decode => "decode",
        }
    }

    /// Both phases in execution order.
    pub const ALL: [InferPhase; 2] = [InferPhase::Prefill, InferPhase::Decode];
}

/// The latency class a batch slot serves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloClass {
    /// Chat-style traffic against the tight p99 budget.
    Interactive,
    /// Batch/background traffic against the looser p999 budget.
    Bulk,
}

impl SloClass {
    /// The tail percentile this class's SLO is written against.
    pub fn percentile(self) -> &'static str {
        match self {
            SloClass::Interactive => "p99",
            SloClass::Bulk => "p999",
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Bulk => "bulk",
        }
    }
}

/// Serving configuration. The per-cycle deadline structure is *derived*:
/// each slot contributes its SLO budget, and the cumulative budget lands
/// on the slot's decode action as a deadline class.
#[derive(Clone, Copy, Debug)]
pub struct InferConfig {
    /// Requests per batch (one cycle = one admission round).
    pub requests_per_batch: usize,
    /// Quality levels (ladder rungs).
    pub n_quality: usize,
    /// Nominal prompt length in tokens.
    pub prompt_tokens: u32,
    /// Answer length in tokens per request.
    pub decode_tokens: u32,
    /// The interactive (p99) completion budget per slot; bulk slots get
    /// twice this.
    pub interactive_slo: Time,
    /// Tenants in the synthetic population.
    pub n_tenants: u32,
    /// Request-population seed.
    pub seed: u64,
}

impl InferConfig {
    /// The CI-scale configuration: 16 requests per batch (32 actions),
    /// 5 quality levels, 128-token prompts, 16 decode tokens, a 300 µs
    /// interactive SLO over 16 tenants — sustainable in expectation at
    /// rung 2, infeasible at rung 3, ~3 % worst-case margin at rung 0.
    pub fn small(seed: u64) -> InferConfig {
        InferConfig {
            requests_per_batch: 16,
            n_quality: 5,
            prompt_tokens: 128,
            decode_tokens: 16,
            interactive_slo: Time::from_us(300),
            n_tenants: 16,
            seed,
        }
    }

    /// A tiny configuration for tests: 4 requests per batch (8 actions),
    /// same per-slot budgets as [`InferConfig::small`].
    pub fn tiny(seed: u64) -> InferConfig {
        InferConfig {
            requests_per_batch: 4,
            n_quality: 5,
            prompt_tokens: 128,
            decode_tokens: 16,
            interactive_slo: Time::from_us(300),
            n_tenants: 4,
            seed,
        }
    }

    /// The SLO class of a batch slot: every fourth slot carries bulk
    /// traffic, the rest are interactive.
    pub fn slo_class(&self, slot: usize) -> SloClass {
        if slot % 4 == 3 {
            SloClass::Bulk
        } else {
            SloClass::Interactive
        }
    }

    /// The completion budget one slot contributes to the cycle.
    pub fn slot_budget(&self, slot: usize) -> Time {
        match self.slo_class(slot) {
            SloClass::Interactive => self.interactive_slo,
            SloClass::Bulk => self.interactive_slo.saturating_mul(2),
        }
    }

    /// The batch period (= cycle deadline): the sum of all slot budgets.
    pub fn batch_period(&self) -> Time {
        (0..self.requests_per_batch)
            .map(|s| self.slot_budget(s))
            .sum()
    }

    /// Calibrated average execution time (ns) of one phase at a rung.
    /// Prefill scales with prompt length and the model × quantization
    /// weight; decode additionally carries the rung's *expected* coupling
    /// at its own admission depth.
    pub fn phase_av_ns(&self, phase: InferPhase, rung: InferRung) -> i64 {
        let w = rung.cost_weight();
        let ns = match phase {
            InferPhase::Prefill => f64::from(self.prompt_tokens) * PREFILL_NS_PER_TOKEN * w,
            InferPhase::Decode => {
                f64::from(self.decode_tokens)
                    * DECODE_NS_PER_TOKEN
                    * w
                    * coupling_factor(rung.batch_depth as f64)
            }
        };
        ns.round() as i64
    }

    /// Worst-case execution time (ns) of one phase at a rung (an
    /// adversarial request: maximum prompt, cache-cold prefix, the whole
    /// batch admitted at full depth).
    pub fn phase_wc_ns(&self, phase: InferPhase, rung: InferRung) -> i64 {
        self.phase_av_ns(phase, rung) * 2
    }
}

/// The synthetic serving batch: request population + scheduled system +
/// quality ladder.
#[derive(Clone, Debug)]
pub struct InferPipeline {
    config: InferConfig,
    requests: SyntheticRequests,
    ladder: InferLadder,
    system: ParameterizedSystem,
}

impl InferPipeline {
    /// Build the batch's action sequence, timing tables, and SLO deadline
    /// classes.
    ///
    /// # Examples
    ///
    /// ```
    /// use sqm_infer::pipeline::{InferConfig, InferPipeline};
    ///
    /// let infer = InferPipeline::new(InferConfig::tiny(1)).unwrap();
    /// // Two actions per request: prefill then decode.
    /// assert_eq!(infer.system().n_actions(), 8);
    /// // Every slot's decode carries its cumulative SLO budget.
    /// assert_eq!(infer.system().deadlines().constrained_count(), 4);
    /// ```
    pub fn new(config: InferConfig) -> Result<InferPipeline, BuildError> {
        let requests = SyntheticRequests::new(config.n_tenants, config.prompt_tokens, config.seed);
        let ladder = InferLadder::standard(config.n_quality);
        let mut actions = Vec::with_capacity(2 * config.requests_per_batch);
        let mut table = TimeTableBuilder::new();
        for r in 0..config.requests_per_batch {
            for phase in InferPhase::ALL {
                actions.push(ActionInfo::with_kind(
                    format!("req{r}.{}", phase.label()),
                    phase.kind(),
                ));
                let wc: Vec<Time> = ladder
                    .rungs()
                    .iter()
                    .map(|&rung| Time::from_ns(config.phase_wc_ns(phase, rung)))
                    .collect();
                let av: Vec<Time> = ladder
                    .rungs()
                    .iter()
                    .map(|&rung| Time::from_ns(config.phase_av_ns(phase, rung)))
                    .collect();
                table.push_action(&wc, &av);
            }
        }
        let n = actions.len();
        let mut deadlines = DeadlineMap::new(n);
        let mut budget = Time::ZERO;
        for r in 0..config.requests_per_batch {
            budget += config.slot_budget(r);
            deadlines.set(2 * r + 1, budget);
        }
        let system = ParameterizedSystem::new(actions, table.build()?, deadlines)?;
        Ok(InferPipeline {
            config,
            requests,
            ladder,
            system,
        })
    }

    /// The scheduled parameterized system (`2 · requests_per_batch`
    /// actions).
    pub fn system(&self) -> &ParameterizedSystem {
        &self.system
    }

    /// The request population.
    pub fn requests(&self) -> &SyntheticRequests {
        &self.requests
    }

    /// The quality ladder (model × quantization × admission depth).
    pub fn ladder(&self) -> &InferLadder {
        &self.ladder
    }

    /// The configuration.
    pub fn config(&self) -> &InferConfig {
        &self.config
    }

    /// Serving phase of an action.
    pub fn phase(&self, action: ActionId) -> InferPhase {
        InferPhase::from_kind(self.system.action(action).kind)
    }

    /// The batch slot an action serves.
    pub fn slot_of(&self, action: ActionId) -> usize {
        action / 2
    }

    /// The SLO class of the slot an action serves.
    pub fn slo_of(&self, action: ActionId) -> SloClass {
        self.config.slo_class(self.slot_of(action))
    }

    /// The request an action serves in a given cycle.
    pub fn request(&self, cycle: usize, action: ActionId) -> Request {
        self.requests.request(cycle as u64, self.slot_of(action))
    }

    /// Batch-coupled execution-time source.
    pub fn exec(&self, jitter: f64, seed: u64) -> BatchCoupledExec<'_> {
        BatchCoupledExec {
            infer: self,
            rng: StdRng::seed_from_u64(seed),
            jitter,
            batch: BatchState::default(),
        }
    }
}

/// The continuous batch's shared state within one cycle: how many
/// requests have been admitted so far and at what total depth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchState {
    depth_sum: u64,
    admitted: u32,
}

impl BatchState {
    /// Admit one request at `depth`.
    pub fn admit(&mut self, depth: usize) {
        self.depth_sum += depth as u64;
        self.admitted += 1;
    }

    /// Mean admitted depth (`1.0` for an empty batch — a decode with no
    /// admissions runs alone).
    pub fn mean_depth(&self) -> f64 {
        if self.admitted == 0 {
            1.0
        } else {
            self.depth_sum as f64 / f64::from(self.admitted)
        }
    }

    /// Requests admitted so far this cycle.
    pub fn admitted(&self) -> u32 {
        self.admitted
    }

    /// Start a fresh batch.
    pub fn reset(&mut self) {
        *self = BatchState::default();
    }
}

/// Execution-time source for an [`InferPipeline`]: actual times are the
/// phase averages scaled by the request's content complexity (prompt
/// size, prefix-cache affinity, answer verbosity), ±`jitter` sampling
/// noise — and, for decodes, the **live co-batch coupling**: the mean
/// admitted depth of the batch so far replaces the rung's static
/// expectation. Raising any co-batched request's admission depth can only
/// lengthen a decode, never shorten it.
pub struct BatchCoupledExec<'a> {
    infer: &'a InferPipeline,
    rng: StdRng,
    jitter: f64,
    batch: BatchState,
}

impl BatchCoupledExec<'_> {
    /// Phase-specific complexity of a request relative to the calibration
    /// average: prefill scales with prompt size discounted by prefix-cache
    /// hits, decode with answer verbosity.
    fn complexity(&self, phase: InferPhase, req: &Request) -> f64 {
        match phase {
            InferPhase::Prefill => {
                let size =
                    f64::from(req.prompt_tokens) / f64::from(self.infer.config.prompt_tokens);
                ((0.3 + 0.7 * size) * (1.0 - 0.5 * req.cache_hit)).clamp(0.2, 2.0)
            }
            InferPhase::Decode => (0.55 + 0.5 * req.verbosity).clamp(0.2, 2.0),
        }
    }

    /// The shared batch state (observational; tests and the fuzzer use it
    /// to cross-check the coupling arithmetic).
    pub fn batch(&self) -> BatchState {
        self.batch
    }
}

impl ExecutionTimeSource for BatchCoupledExec<'_> {
    fn actual(&mut self, cycle: usize, action: ActionId, q: Quality) -> Time {
        // Action 0 opens a new admission round.
        if action == 0 {
            self.batch.reset();
        }
        let infer = self.infer;
        let phase = infer.phase(action);
        let rung = infer.ladder.rung(q);
        let req = infer.request(cycle, action);
        let av = infer.system.table().av(action, q).as_ns() as f64;
        let wc = infer.system.table().wc(action, q);
        let coupling = match phase {
            InferPhase::Prefill => {
                self.batch.admit(rung.batch_depth);
                1.0
            }
            // The table's decode average assumes the rung's own depth;
            // rescale it to the batch actually admitted so far.
            InferPhase::Decode => {
                coupling_factor(self.batch.mean_depth()) / coupling_factor(rung.batch_depth as f64)
            }
        };
        let complexity = self.complexity(phase, &req);
        let jitter = 1.0 + self.rng.gen_range(-self.jitter..=self.jitter);
        let ns = (av * coupling * complexity * jitter).round() as i64;
        Time::from_ns(ns.max(0)).min(wc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_core::controller::{CycleRunner, OverheadModel};
    use sqm_core::manager::NumericManager;
    use sqm_core::policy::MixedPolicy;

    #[test]
    fn small_config_shape_and_budget() {
        let infer = InferPipeline::new(InferConfig::small(1)).unwrap();
        assert_eq!(infer.system().n_actions(), 2 * 16);
        assert_eq!(infer.system().qualities().len(), 5);
        // 12 interactive slots at 300 µs + 4 bulk slots at 600 µs.
        assert_eq!(infer.config().batch_period(), Time::from_us(6_000));
        // Sustainable in expectation at rung 2, infeasible at rung 3.
        let sys = infer.system();
        assert!(sys.prefix().av_total(Quality::new(2)) <= infer.config().batch_period());
        assert!(sys.prefix().av_total(Quality::new(3)) > infer.config().batch_period());
        // Worst-case feasibility at qmin holds, but the margin is thin —
        // this workload actually leans on the manager.
        let slack = sys.min_quality_slack().as_ns() as f64;
        let period = infer.config().batch_period().as_ns() as f64;
        assert!(slack > 0.0, "qmin must be schedulable");
        assert!(slack / period > 0.02, "qmin slack {slack}");
        assert!(slack / period < 0.10, "margin should stay thin: {slack}");
    }

    #[test]
    fn action_layout_and_phases() {
        let infer = InferPipeline::new(InferConfig::tiny(1)).unwrap();
        assert_eq!(infer.phase(0), InferPhase::Prefill);
        assert_eq!(infer.phase(1), InferPhase::Decode);
        assert_eq!(infer.slot_of(0), 0);
        assert_eq!(infer.slot_of(3), 1);
        assert_eq!(infer.system().action(2).name, "req1.prefill");
        assert_eq!(infer.system().action(3).name, "req1.decode");
        assert_eq!(InferPhase::Decode.label(), "decode");
    }

    #[test]
    fn slo_classes_become_deadline_classes() {
        let config = InferConfig::tiny(1);
        let infer = InferPipeline::new(config).unwrap();
        let deadlines = infer.system().deadlines();
        // One deadline per slot, on the decode action, monotone, final
        // action constrained.
        assert_eq!(deadlines.constrained_count(), config.requests_per_batch);
        assert!(deadlines.is_monotone());
        assert_eq!(deadlines.last_constrained(), Some(7));
        assert_eq!(deadlines.get(0), None, "prefills are unconstrained");
        assert_eq!(deadlines.get(1), Some(Time::from_us(300)));
        assert_eq!(deadlines.get(7), Some(Time::from_us(1_500)));
        // Every fourth slot is bulk with twice the budget.
        assert_eq!(config.slo_class(0), SloClass::Interactive);
        assert_eq!(config.slo_class(3), SloClass::Bulk);
        assert_eq!(config.slot_budget(3), Time::from_us(600));
        assert_eq!(infer.slo_of(7), SloClass::Bulk);
        assert_eq!(SloClass::Interactive.percentile(), "p99");
        assert_eq!(SloClass::Bulk.percentile(), "p999");
        assert_eq!(SloClass::Bulk.label(), "bulk");
    }

    #[test]
    fn exec_respects_contract_and_is_deterministic() {
        let infer = InferPipeline::new(InferConfig::tiny(3)).unwrap();
        let sample = |seed: u64| -> Vec<i64> {
            let mut e = infer.exec(0.1, seed);
            (0..infer.system().n_actions())
                .map(|a| e.actual(0, a, Quality::new(3)).as_ns())
                .collect()
        };
        let a = sample(9);
        assert_eq!(a, sample(9));
        assert_ne!(a, sample(10));
        for (action, &ns) in a.iter().enumerate() {
            let wc = infer.system().table().wc(action, Quality::new(3)).as_ns();
            assert!(ns >= 0 && ns <= wc, "action {action}: {ns} > wc {wc}");
        }
    }

    #[test]
    fn phase_tables_are_monotone_in_quality() {
        let infer = InferPipeline::new(InferConfig::tiny(1)).unwrap();
        let sys = infer.system();
        for action in 0..sys.n_actions() {
            for q in 1..5 {
                let (lo, hi) = (Quality::new(q - 1), Quality::new(q));
                assert!(sys.table().av(action, hi) >= sys.table().av(action, lo));
                assert!(sys.table().wc(action, hi) >= sys.table().wc(action, lo));
                assert!(sys.table().wc(action, hi) >= sys.table().av(action, hi));
            }
        }
    }

    /// The coupling seam itself: admit the *other* slots deeper and a
    /// decode must never get shorter. Both runs make identical RNG draw
    /// sequences (one draw per action), so the only difference is the
    /// co-batch depth.
    #[test]
    fn deeper_co_batch_never_shortens_decode() {
        let infer = InferPipeline::new(InferConfig::tiny(7)).unwrap();
        let n = infer.system().n_actions();
        let target = n - 1; // last decode sees every other admission
        let own_q = Quality::new(4);
        let decode_with_others_at = |others: Quality| -> Time {
            let mut exec = infer.exec(0.05, 21);
            let mut out = Time::ZERO;
            for action in 0..n {
                let q = if infer.slot_of(action) == infer.slot_of(target) {
                    own_q
                } else {
                    others
                };
                let t = exec.actual(0, action, q);
                if action == target {
                    out = t;
                }
            }
            out
        };
        let shallow = decode_with_others_at(Quality::new(0));
        let deep = decode_with_others_at(Quality::new(4));
        assert!(
            deep > shallow,
            "deeper co-batch must lengthen the decode: {shallow} vs {deep}"
        );
    }

    #[test]
    fn batch_state_resets_each_cycle() {
        let infer = InferPipeline::new(InferConfig::tiny(2)).unwrap();
        let n = infer.system().n_actions();
        let mut exec = infer.exec(0.1, 5);
        for action in 0..n {
            exec.actual(0, action, Quality::new(2));
        }
        assert_eq!(exec.batch().admitted() as usize, n / 2);
        // The next cycle's first action opens a fresh admission round.
        exec.actual(1, 0, Quality::new(2));
        assert_eq!(exec.batch().admitted(), 1);
        let mut empty = BatchState::default();
        assert_eq!(empty.mean_depth(), 1.0);
        empty.admit(5);
        assert_eq!(empty.mean_depth(), 5.0);
        empty.reset();
        assert_eq!(empty.admitted(), 0);
    }

    #[test]
    fn coupling_factor_is_monotone_and_anchored() {
        assert_eq!(coupling_factor(1.0), 1.0);
        assert_eq!(coupling_factor(0.0), 1.0, "clamped below a solo decode");
        let mut prev = 0.0;
        for d in 1..=8 {
            let c = coupling_factor(d as f64);
            assert!(c > prev);
            prev = c;
        }
        assert_eq!(coupling_factor(8.0), 1.0 + 7.0 * COUPLING_PER_REQUEST);
    }

    #[test]
    fn controlled_batch_is_safe_and_uses_budget() {
        let infer = InferPipeline::new(InferConfig::small(3)).unwrap();
        let sys = infer.system();
        let policy = MixedPolicy::new(sys);
        let mut runner =
            CycleRunner::new(sys, NumericManager::new(sys, &policy), OverheadModel::ZERO);
        let mut exec = infer.exec(0.15, 7);
        let trace = runner.run_cycle(0, Time::ZERO, &mut exec);
        assert_eq!(trace.stats().misses, 0);
        assert!(
            trace.stats().avg_quality > 1.0,
            "SLO budget converted into quality, got {}",
            trace.stats().avg_quality
        );
    }
}
