//! The scheduled encoder as a parameterized system.
//!
//! §4.1: "the scheduled video encoder, a sequence of 1,189 actions" with
//! seven quality levels. A 352×288 frame has 396 macroblocks; the pipeline
//! runs three actions per macroblock — motion estimation, DCT +
//! quantization, entropy coding — plus one frame-setup action:
//! `3 · 396 + 1 = 1,189`.
//!
//! The timing model is calibrated for the paper's platform class (frame
//! period ≈ 1.03 s = 30 s / 29 frames): average action times of a few
//! hundred microseconds growing linearly with the quality level, such that
//! the whole frame fits the period at quality ≈ 4 and exceeds it at 5–6 —
//! which is exactly the regime in which the Quality Manager has a real job
//! (Fig. 7's average levels hover between 3.5 and 4.5). Worst cases are
//! 2–2.2× the averages; feasibility at `qmin` holds with ~30 % margin.

use crate::video::SyntheticVideo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqm_core::action::{ActionId, ActionInfo, DeadlineMap};
use sqm_core::controller::ExecutionTimeSource;
use sqm_core::error::BuildError;
use sqm_core::quality::Quality;
use sqm_core::system::ParameterizedSystem;
use sqm_core::time::Time;
use sqm_core::timing::TimeTableBuilder;

/// Pipeline stage of an encoder action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Per-frame input/bookkeeping action (one per cycle).
    FrameSetup,
    /// Block motion estimation (cost ∝ search window ∝ quality).
    MotionEst,
    /// Forward DCT + quantization (cost grows with coefficient precision).
    DctQuant,
    /// Entropy coding (cost grows with coded bits).
    Entropy,
}

impl Stage {
    /// Kind tag stored in [`ActionInfo::kind`].
    pub fn kind(self) -> u32 {
        match self {
            Stage::FrameSetup => 0,
            Stage::MotionEst => 1,
            Stage::DctQuant => 2,
            Stage::Entropy => 3,
        }
    }

    fn from_kind(kind: u32) -> Stage {
        match kind {
            0 => Stage::FrameSetup,
            1 => Stage::MotionEst,
            2 => Stage::DctQuant,
            _ => Stage::Entropy,
        }
    }

    /// Average execution time (ns) at a quality level.
    pub fn av_ns(self, q: usize) -> i64 {
        let q = q as i64;
        match self {
            Stage::FrameSetup => 2_000_000,
            Stage::MotionEst => 300_000 + 220_000 * q,
            Stage::DctQuant => 330_000 + 110_000 * q,
            Stage::Entropy => 246_000 + 69_000 * q,
        }
    }

    /// Worst-case execution time (ns) at a quality level.
    pub fn wc_ns(self, q: usize) -> i64 {
        match self {
            Stage::FrameSetup => 4_000_000,
            Stage::MotionEst => self.av_ns(q) * 22 / 10,
            Stage::DctQuant => self.av_ns(q) * 2,
            Stage::Entropy => self.av_ns(q) * 2,
        }
    }

    /// `(texture, motion)` complexity weights for this stage.
    fn weights(self) -> (f64, f64) {
        match self {
            Stage::FrameSetup => (0.0, 0.0),
            Stage::MotionEst => (0.3, 0.7),
            Stage::DctQuant => (0.9, 0.1),
            Stage::Entropy => (0.8, 0.2),
        }
    }
}

/// Encoder configuration.
#[derive(Clone, Copy, Debug)]
pub struct EncoderConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Number of quality levels `|Q|`.
    pub n_quality: usize,
    /// Per-frame deadline (= cycle period).
    pub frame_period: Time,
    /// Frames in the clip.
    pub frames: usize,
    /// Content seed.
    pub seed: u64,
}

impl EncoderConfig {
    /// The paper's configuration: 352×288 (396 macroblocks → 1,189
    /// actions), 7 quality levels, 29 frames, global deadline 30 s
    /// (≈ 1.034 s per frame).
    pub fn paper(seed: u64) -> EncoderConfig {
        EncoderConfig {
            width: 352,
            height: 288,
            n_quality: 7,
            frame_period: Time::from_ns(30_000_000_000 / 29),
            frames: 29,
            seed,
        }
    }

    /// A QCIF-scale configuration (176×144 → 99 macroblocks → 298
    /// actions): large enough that the numeric manager's suffix scans
    /// dominate its cost, small enough for CI baselines. The frame period
    /// keeps the paper's per-action budget (≈ 0.9 ms/action).
    pub fn small(seed: u64) -> EncoderConfig {
        EncoderConfig {
            width: 176,
            height: 144,
            n_quality: 7,
            frame_period: Time::from_ms(270),
            frames: 24,
            seed,
        }
    }

    /// A small configuration for tests (fewer macroblocks, same shape).
    pub fn tiny(seed: u64) -> EncoderConfig {
        EncoderConfig {
            width: 64,
            height: 48,
            n_quality: 7,
            frame_period: Time::from_ms(35),
            frames: 8,
            seed,
        }
    }
}

/// The synthetic MPEG encoder: video source + scheduled parameterized
/// system.
#[derive(Clone, Debug)]
pub struct MpegEncoder {
    config: EncoderConfig,
    video: SyntheticVideo,
    system: ParameterizedSystem,
}

impl MpegEncoder {
    /// Build the encoder's action sequence and timing tables.
    pub fn new(config: EncoderConfig) -> Result<MpegEncoder, BuildError> {
        let video = SyntheticVideo::new(config.width, config.height, config.frames, 8, config.seed);
        let n_mb = video.macroblocks();
        let n_actions = 3 * n_mb + 1;
        let nq = config.n_quality;

        let mut actions = Vec::with_capacity(n_actions);
        let mut table = TimeTableBuilder::new();
        let mut push = |actions: &mut Vec<ActionInfo>, name: String, stage: Stage| {
            actions.push(ActionInfo::with_kind(name, stage.kind()));
            let wc: Vec<Time> = (0..nq).map(|q| Time::from_ns(stage.wc_ns(q))).collect();
            let av: Vec<Time> = (0..nq).map(|q| Time::from_ns(stage.av_ns(q))).collect();
            table.push_action(&wc, &av);
        };
        push(&mut actions, "frame.setup".to_string(), Stage::FrameSetup);
        for mb in 0..n_mb {
            push(&mut actions, format!("mb{mb}.me"), Stage::MotionEst);
            push(&mut actions, format!("mb{mb}.dct"), Stage::DctQuant);
            push(&mut actions, format!("mb{mb}.vlc"), Stage::Entropy);
        }
        let deadlines = DeadlineMap::single_global(n_actions, config.frame_period);
        let system = ParameterizedSystem::new(actions, table.build()?, deadlines)?;
        Ok(MpegEncoder {
            config,
            video,
            system,
        })
    }

    /// The scheduled parameterized system (1,189 actions for the paper
    /// configuration).
    pub fn system(&self) -> &ParameterizedSystem {
        &self.system
    }

    /// The video source driving content-dependent execution times.
    pub fn video(&self) -> &SyntheticVideo {
        &self.video
    }

    /// The configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Pipeline stage of an action.
    pub fn stage(&self, action: ActionId) -> Stage {
        Stage::from_kind(self.system.action(action).kind)
    }

    /// The macroblock an action processes (`None` for frame setup).
    pub fn macroblock(&self, action: ActionId) -> Option<usize> {
        (action > 0).then(|| (action - 1) / 3)
    }

    /// An execution-time source for this encoder: actual times are the
    /// stage averages scaled by the macroblock's content complexity and
    /// ±`jitter` sampling noise, clamped to the worst case.
    pub fn exec(&self, jitter: f64, seed: u64) -> EncoderExec<'_> {
        EncoderExec {
            encoder: self,
            rng: StdRng::seed_from_u64(seed),
            jitter,
            burst: None,
            gop: None,
        }
    }

    /// Perform the *real* computation of one action at a quality level on
    /// actual pixel data (used by the Criterion benches so the measured
    /// work is genuine). Returns a work token (bits, SAD, …) to keep the
    /// optimizer honest.
    pub fn run_action_kernel(&self, frame: usize, action: ActionId, q: Quality) -> u64 {
        use crate::blocks;
        let frame = frame % self.video.frames.max(1);
        let Some(mb) = self.macroblock(action) else {
            // Frame setup: checksum the first macroblock row.
            return (0..self.video.mb_cols())
                .map(|m| self.video.block(frame, m, 0)[0][0] as u64)
                .sum();
        };
        match self.stage(action) {
            Stage::MotionEst => {
                let range = blocks::search_range(q.index());
                let cur = self.video.block(frame, mb, 0);
                let prev = frame.saturating_sub(1);
                let (dy, dx, sad) = blocks::motion_search(&cur, range, |dy, dx| {
                    // Shifted fetch from the previous frame's block content.
                    let mut b = self.video.block(prev, mb, 0);
                    b[0][0] = b[0][0].wrapping_add(dy + dx); // offset-dependent
                    b
                });
                (dy + dx).unsigned_abs() as u64 + sad as u64
            }
            Stage::DctQuant => {
                let mut acc = 0u64;
                for sub in 0..4 {
                    let block = self.video.block(frame, mb, sub);
                    let coeffs = blocks::fdct8(&block);
                    let levels = blocks::quantize(&coeffs, blocks::quant_step(q.index()));
                    acc += levels
                        .iter()
                        .flatten()
                        .map(|&l| l.unsigned_abs() as u64)
                        .sum::<u64>();
                }
                acc
            }
            Stage::Entropy => {
                let mut acc = 0u64;
                for sub in 0..4 {
                    let block = self.video.block(frame, mb, sub);
                    let (bits, _) = blocks::encode_block(&block, q.index());
                    acc += bits as u64;
                }
                acc
            }
            Stage::FrameSetup => unreachable!("handled above"),
        }
    }
}

/// Content-driven execution-time source for an [`MpegEncoder`].
pub struct EncoderExec<'a> {
    encoder: &'a MpegEncoder,
    rng: StdRng,
    jitter: f64,
    /// Optional synthetic burst `(first_mb, last_mb, factor)` layered on
    /// top of the content complexity — used by the Fig. 8 experiment to
    /// produce a mid-frame hot region.
    burst: Option<(usize, usize, f64)>,
    /// Optional GOP structure modulating per-stage costs by frame kind.
    gop: Option<crate::gop::GopPattern>,
}

impl EncoderExec<'_> {
    /// Layer a complexity burst over macroblocks `first..=last`.
    pub fn with_burst(mut self, first_mb: usize, last_mb: usize, factor: f64) -> Self {
        self.burst = Some((first_mb, last_mb, factor));
        self
    }

    /// Modulate stage costs with a GOP pattern (I-frames skip motion
    /// search, code denser residuals).
    pub fn with_gop(mut self, gop: crate::gop::GopPattern) -> Self {
        self.gop = Some(gop);
        self
    }
}

impl ExecutionTimeSource for EncoderExec<'_> {
    fn actual(&mut self, cycle: usize, action: ActionId, q: Quality) -> Time {
        let enc = self.encoder;
        let frame = cycle % enc.video.frames.max(1);
        let stage = enc.stage(action);
        let av = enc.system.table().av(action, q).as_ns() as f64;
        let wc = enc.system.table().wc(action, q);
        let complexity = match enc.macroblock(action) {
            None => 1.0,
            Some(mb) => {
                let (tw, mw) = stage.weights();
                let mut c = enc.video.complexity(frame, mb, tw.max(1e-9), mw);
                if let Some((lo, hi, f)) = self.burst {
                    if (lo..=hi).contains(&mb) {
                        c *= f;
                    }
                }
                c
            }
        };
        let gop_factor = self
            .gop
            .as_ref()
            .map_or(1.0, |g| g.stage_factor(frame, stage));
        let jitter = 1.0 + self.rng.gen_range(-self.jitter..=self.jitter);
        let ns = (av * complexity * gop_factor * jitter).round() as i64;
        Time::from_ns(ns.max(0)).min(wc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_core::policy::MixedPolicy;

    #[test]
    fn paper_configuration_has_1189_actions() {
        let enc = MpegEncoder::new(EncoderConfig::paper(1)).unwrap();
        assert_eq!(enc.system().n_actions(), 1_189);
        assert_eq!(enc.system().qualities().len(), 7);
        assert_eq!(enc.video().macroblocks(), 396);
        // The paper's table accounting depends on exactly these counts.
        assert_eq!(enc.system().n_actions() * 7, 8_323);
    }

    #[test]
    fn action_layout_and_stages() {
        let enc = MpegEncoder::new(EncoderConfig::tiny(1)).unwrap();
        assert_eq!(enc.stage(0), Stage::FrameSetup);
        assert_eq!(enc.macroblock(0), None);
        assert_eq!(enc.stage(1), Stage::MotionEst);
        assert_eq!(enc.stage(2), Stage::DctQuant);
        assert_eq!(enc.stage(3), Stage::Entropy);
        assert_eq!(enc.macroblock(1), Some(0));
        assert_eq!(enc.macroblock(3), Some(0));
        assert_eq!(enc.macroblock(4), Some(1));
        assert_eq!(enc.system().action(1).name, "mb0.me");
    }

    #[test]
    fn feasible_at_qmin_infeasible_at_qmax() {
        let enc = MpegEncoder::new(EncoderConfig::paper(1)).unwrap();
        let sys = enc.system();
        // Feasibility at qmin is enforced by construction; check the slack
        // is comfortably positive (≈ 30 % of the period).
        let slack = sys.min_quality_slack().as_ns() as f64;
        let period = enc.config().frame_period.as_ns() as f64;
        assert!(slack / period > 0.2, "qmin slack {slack}");
        // The *average* demand at qmax exceeds the period: the manager can
        // never just cruise at maximum quality.
        let total_av_qmax = sys.prefix().av_total(sys.qualities().max());
        assert!(total_av_qmax > enc.config().frame_period);
        // …but at quality 4 it fits.
        let total_av_q4 = sys.prefix().av_total(Quality::new(4));
        assert!(total_av_q4 < enc.config().frame_period);
    }

    #[test]
    fn initial_choice_is_mid_range() {
        let enc = MpegEncoder::new(EncoderConfig::paper(1)).unwrap();
        let policy = MixedPolicy::new(enc.system());
        let q = sqm_core::policy::choose_quality(&policy, 7, 0, Time::ZERO).unwrap();
        assert!(
            (3..=5).contains(&q.index()),
            "cycle-start choice should be mid-range, got {q}"
        );
    }

    #[test]
    fn exec_respects_contract_and_is_deterministic() {
        let enc = MpegEncoder::new(EncoderConfig::tiny(3)).unwrap();
        let sample = |seed: u64| -> Vec<i64> {
            let mut e = enc.exec(0.1, seed);
            (0..enc.system().n_actions())
                .map(|a| e.actual(0, a, Quality::new(3)).as_ns())
                .collect()
        };
        let a = sample(9);
        assert_eq!(a, sample(9));
        assert_ne!(a, sample(10));
        for (action, &ns) in a.iter().enumerate() {
            let wc = enc.system().table().wc(action, Quality::new(3)).as_ns();
            assert!(ns >= 0 && ns <= wc, "action {action}: {ns} > wc {wc}");
        }
    }

    #[test]
    fn burst_increases_times_in_window() {
        let enc = MpegEncoder::new(EncoderConfig::tiny(3)).unwrap();
        let mut plain = enc.exec(0.0, 1);
        let mut bursty = enc.exec(0.0, 1).with_burst(2, 3, 1.5);
        // Macroblock 2's DCT action = 1 + 3·2 + 1 = action 8.
        let p = plain.actual(1, 8, Quality::new(2));
        let b = bursty.actual(1, 8, Quality::new(2));
        assert!(b >= p, "burst must not reduce time");
        // Outside the window nothing changes.
        assert_eq!(
            plain.actual(1, 1, Quality::new(2)),
            bursty.actual(1, 1, Quality::new(2))
        );
    }

    #[test]
    fn kernels_do_quality_dependent_work() {
        let enc = MpegEncoder::new(EncoderConfig::tiny(3)).unwrap();
        // The entropy kernel produces more bits at higher quality.
        let low = enc.run_action_kernel(1, 3, Quality::new(0));
        let high = enc.run_action_kernel(1, 3, Quality::new(6));
        assert!(high >= low, "entropy bits monotone: {low} vs {high}");
        // Frame setup kernel is well-defined too.
        let _ = enc.run_action_kernel(0, 0, Quality::new(0));
    }

    #[test]
    fn stage_timing_tables_are_monotone() {
        for stage in [
            Stage::FrameSetup,
            Stage::MotionEst,
            Stage::DctQuant,
            Stage::Entropy,
        ] {
            for q in 1..7 {
                assert!(stage.av_ns(q) >= stage.av_ns(q - 1));
                assert!(stage.wc_ns(q) >= stage.wc_ns(q - 1));
                assert!(stage.wc_ns(q) >= stage.av_ns(q));
            }
        }
    }
}
