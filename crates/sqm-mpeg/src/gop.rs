//! GOP (group-of-pictures) structure.
//!
//! Real MPEG encoders alternate intra-coded (I) and predicted (P) frames;
//! the two have very different cost profiles — I-frames skip motion
//! estimation but produce denser residuals, P-frames pay for the search
//! and code sparse residuals. The paper's per-frame quality curve (Fig. 7)
//! moves with exactly this kind of content periodicity. [`GopPattern`]
//! models it as per-stage complexity multipliers layered onto the encoder's
//! execution source.

use crate::encoder::Stage;

/// Frame coding kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Intra frame: no temporal prediction.
    I,
    /// Predicted frame: motion-compensated from the previous frame.
    P,
}

/// A repeating GOP pattern, e.g. `IPPP` (GOP length 4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GopPattern {
    kinds: Vec<FrameKind>,
}

impl GopPattern {
    /// `I` followed by `p_count` P-frames.
    pub fn ippp(p_count: usize) -> GopPattern {
        let mut kinds = vec![FrameKind::I];
        kinds.extend(std::iter::repeat_n(FrameKind::P, p_count));
        GopPattern { kinds }
    }

    /// All-intra coding (every frame I).
    pub fn all_intra() -> GopPattern {
        GopPattern {
            kinds: vec![FrameKind::I],
        }
    }

    /// GOP length.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Patterns are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The kind of frame `frame` (cyclic).
    pub fn kind(&self, frame: usize) -> FrameKind {
        self.kinds[frame % self.kinds.len()]
    }

    /// Execution-time multiplier for a pipeline stage on a frame of this
    /// kind. Multipliers stay within the worst-case headroom of the timing
    /// tables (≤ 1.35), so the `C ≤ Cwc` contract survives after clamping.
    pub fn stage_factor(&self, frame: usize, stage: Stage) -> f64 {
        match (self.kind(frame), stage) {
            // Intra: motion estimation degenerates to a cheap intra-mode
            // decision; transform/entropy carry full-energy blocks.
            (FrameKind::I, Stage::MotionEst) => 0.30,
            (FrameKind::I, Stage::DctQuant) => 1.30,
            (FrameKind::I, Stage::Entropy) => 1.35,
            (FrameKind::I, Stage::FrameSetup) => 1.0,
            // Predicted: nominal costs.
            (FrameKind::P, _) => 1.0,
        }
    }

    /// Bit-cost multiplier of a frame kind (I-frames code more bits at the
    /// same quality).
    pub fn bits_factor(&self, frame: usize) -> f64 {
        match self.kind(frame) {
            FrameKind::I => 1.45,
            FrameKind::P => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ippp_layout() {
        let g = GopPattern::ippp(3);
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.kind(0), FrameKind::I);
        assert_eq!(g.kind(1), FrameKind::P);
        assert_eq!(g.kind(3), FrameKind::P);
        assert_eq!(g.kind(4), FrameKind::I, "cyclic");
    }

    #[test]
    fn all_intra() {
        let g = GopPattern::all_intra();
        for f in 0..5 {
            assert_eq!(g.kind(f), FrameKind::I);
        }
    }

    #[test]
    fn stage_factors_reflect_coding_mode() {
        let g = GopPattern::ippp(2);
        assert!(
            g.stage_factor(0, Stage::MotionEst) < 0.5,
            "I skips motion search"
        );
        assert!(
            g.stage_factor(0, Stage::DctQuant) > 1.0,
            "I codes denser residuals"
        );
        assert_eq!(g.stage_factor(1, Stage::MotionEst), 1.0);
        assert!(g.bits_factor(0) > g.bits_factor(1));
    }
}
