//! Bitrate accounting.
//!
//! Encoded size is the other half of the rate/distortion trade the quality
//! level controls: higher levels spend more bits (finer quantization) for
//! higher PSNR. These helpers estimate per-frame and per-run bit budgets
//! from an executed trace, using the real entropy-size model of
//! [`crate::blocks`] on the real (procedural) pixel data, so the rate curve
//! is measured, not assumed.

use crate::blocks::encode_block;
use crate::encoder::{MpegEncoder, Stage};
use crate::gop::GopPattern;
use sqm_core::trace::{CycleTrace, Trace};

/// Exact coded-bit estimate of one macroblock at a quality level (the four
/// luma blocks through DCT → quantization → run-length size).
pub fn macroblock_bits(enc: &MpegEncoder, frame: usize, mb: usize, quality: usize) -> usize {
    (0..4)
        .map(|sub| {
            let block = enc.video().block(frame, mb, sub);
            encode_block(&block, quality).0
        })
        .sum()
}

/// Bits of one executed cycle: each macroblock scored at the quality its
/// entropy-coding action ran with, scaled by the GOP kind's bit factor.
pub fn frame_bits(enc: &MpegEncoder, cycle: &CycleTrace, gop: Option<&GopPattern>) -> f64 {
    let frame = cycle.cycle % enc.video().frames.max(1);
    let factor = gop.map_or(1.0, |g| g.bits_factor(frame));
    let mut bits = 0usize;
    for r in &cycle.records {
        if enc.stage(r.action) == Stage::Entropy {
            let mb = enc
                .macroblock(r.action)
                .expect("entropy actions have a macroblock");
            bits += macroblock_bits(enc, frame, mb, r.quality.index());
        }
    }
    bits as f64 * factor
}

/// Per-frame bit series for a run.
pub fn bitrate_series(enc: &MpegEncoder, trace: &Trace, gop: Option<&GopPattern>) -> Vec<f64> {
    trace
        .cycles
        .iter()
        .map(|c| frame_bits(enc, c, gop))
        .collect()
}

/// Summary of a run's rate behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateSummary {
    /// Mean bits per frame.
    pub mean_bits: f64,
    /// Peak frame.
    pub peak_bits: f64,
    /// Mean bitrate in kbit/s given the frame period in seconds.
    pub kbps: f64,
}

/// Aggregate a bit series into a summary.
pub fn summarize(bits: &[f64], frame_period_s: f64) -> RateSummary {
    if bits.is_empty() || frame_period_s <= 0.0 {
        return RateSummary {
            mean_bits: 0.0,
            peak_bits: 0.0,
            kbps: 0.0,
        };
    }
    let mean = bits.iter().sum::<f64>() / bits.len() as f64;
    let peak = bits.iter().cloned().fold(f64::MIN, f64::max);
    RateSummary {
        mean_bits: mean,
        peak_bits: peak,
        kbps: mean / frame_period_s / 1_000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;
    use sqm_core::controller::{ConstantExec, CycleRunner, OverheadModel};
    use sqm_core::manager::NumericManager;
    use sqm_core::policy::MixedPolicy;
    use sqm_core::time::Time;

    fn run_cycle(enc: &MpegEncoder) -> CycleTrace {
        let sys = enc.system();
        let p = MixedPolicy::new(sys);
        CycleRunner::new(sys, NumericManager::new(sys, &p), OverheadModel::ZERO).run_cycle(
            0,
            Time::ZERO,
            &mut ConstantExec::average(sys.table()),
        )
    }

    #[test]
    fn macroblock_bits_increase_with_quality() {
        let enc = MpegEncoder::new(EncoderConfig::tiny(4)).unwrap();
        let mut prev = 0;
        for q in 0..7 {
            let bits = macroblock_bits(&enc, 1, 2, q);
            assert!(bits >= prev, "bits monotone in quality");
            prev = bits;
        }
        assert!(prev > 0);
    }

    #[test]
    fn frame_bits_reflect_gop_kind() {
        let enc = MpegEncoder::new(EncoderConfig::tiny(4)).unwrap();
        let cycle = run_cycle(&enc);
        let g = GopPattern::ippp(3);
        let plain = frame_bits(&enc, &cycle, None);
        let with_gop = frame_bits(&enc, &cycle, Some(&g)); // frame 0 is I
        assert!(plain > 0.0);
        assert!((with_gop / plain - 1.45).abs() < 1e-9);
    }

    #[test]
    fn series_and_summary() {
        let enc = MpegEncoder::new(EncoderConfig::tiny(4)).unwrap();
        let cycle = run_cycle(&enc);
        let trace = Trace {
            cycles: vec![cycle.clone(), cycle],
        };
        let series = bitrate_series(&enc, &trace, None);
        assert_eq!(series.len(), 2);
        let s = summarize(&series, 0.035);
        assert!(s.mean_bits > 0.0);
        assert_eq!(s.mean_bits, s.peak_bits, "identical frames");
        assert!(s.kbps > 0.0);
        let empty = summarize(&[], 0.035);
        assert_eq!(empty.kbps, 0.0);
    }
}
