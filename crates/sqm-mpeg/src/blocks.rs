//! Integer signal-processing kernels.
//!
//! Real (if compact) implementations of the encoder's inner loops, so that
//! benchmark workloads burn genuine, quality-dependent CPU time and the
//! rate/distortion metrics have physical meaning:
//!
//! * an 8×8 separable integer DCT and its inverse (fixed-point, 13-bit
//!   coefficient scale);
//! * uniform quantization with a quality-level-dependent step;
//! * a zigzag run-length estimate of the entropy-coded size;
//! * exhaustive block motion search with a quality-dependent window.

/// Fixed-point scale for the DCT basis (13 bits).
const FIX: i32 = 1 << 13;
const FIX_SHIFT: u32 = 13;

/// cos((2x+1)·u·π/16) · √(1/4 or 1/8) in fixed point, indexed `[u][x]`.
fn dct_basis() -> [[i32; 8]; 8] {
    let mut b = [[0i32; 8]; 8];
    for (u, row) in b.iter_mut().enumerate() {
        let cu = if u == 0 { (0.125f64).sqrt() } else { 0.5 };
        for (x, v) in row.iter_mut().enumerate() {
            let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            *v = (cu * angle.cos() * FIX as f64).round() as i32;
        }
    }
    b
}

/// Forward 8×8 DCT (separable, fixed point). Input pixels `0..=255`,
/// output coefficients roughly `−2048..=2048`.
pub fn fdct8(block: &[[i32; 8]; 8]) -> [[i32; 8]; 8] {
    let basis = dct_basis();
    // Rows.
    let mut tmp = [[0i64; 8]; 8];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0i64;
            for x in 0..8 {
                acc += basis[u][x] as i64 * block[y][x] as i64;
            }
            tmp[y][u] = (acc + (1 << (FIX_SHIFT - 1))) >> FIX_SHIFT;
        }
    }
    // Columns.
    let mut out = [[0i32; 8]; 8];
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0i64;
            for y in 0..8 {
                acc += basis[v][y] as i64 * tmp[y][u];
            }
            out[v][u] = ((acc + (1 << (FIX_SHIFT - 1))) >> FIX_SHIFT) as i32;
        }
    }
    out
}

/// Inverse 8×8 DCT. `idct8(fdct8(b))` reconstructs `b` within ±2.
pub fn idct8(coeffs: &[[i32; 8]; 8]) -> [[i32; 8]; 8] {
    let basis = dct_basis();
    let mut tmp = [[0i64; 8]; 8];
    for v in 0..8 {
        for x in 0..8 {
            let mut acc = 0i64;
            for u in 0..8 {
                acc += basis[u][x] as i64 * coeffs[v][u] as i64;
            }
            tmp[v][x] = (acc + (1 << (FIX_SHIFT - 1))) >> FIX_SHIFT;
        }
    }
    let mut out = [[0i32; 8]; 8];
    for x in 0..8 {
        for y in 0..8 {
            let mut acc = 0i64;
            for v in 0..8 {
                acc += basis[v][y] as i64 * tmp[v][x];
            }
            out[y][x] = ((acc + (1 << (FIX_SHIFT - 1))) >> FIX_SHIFT) as i32;
        }
    }
    out
}

/// Quantization step for a quality level: level 0 is coarse (step 40),
/// each level refines by 5 down to step 10 at level 6 — monotone rate
/// increase, the knob the Quality Manager turns.
pub fn quant_step(quality: usize) -> i32 {
    (40 - 5 * quality as i32).max(4)
}

/// Uniformly quantize DCT coefficients.
pub fn quantize(coeffs: &[[i32; 8]; 8], step: i32) -> [[i32; 8]; 8] {
    let mut out = [[0i32; 8]; 8];
    for y in 0..8 {
        for x in 0..8 {
            let c = coeffs[y][x];
            out[y][x] = if c >= 0 {
                (c + step / 2) / step
            } else {
                -((-c + step / 2) / step)
            };
        }
    }
    out
}

/// Reconstruct coefficients from quantized levels.
pub fn dequantize(levels: &[[i32; 8]; 8], step: i32) -> [[i32; 8]; 8] {
    let mut out = [[0i32; 8]; 8];
    for y in 0..8 {
        for x in 0..8 {
            out[y][x] = levels[y][x] * step;
        }
    }
    out
}

/// Zigzag scan order of an 8×8 block.
fn zigzag() -> [(usize, usize); 64] {
    let mut order = [(0usize, 0usize); 64];
    let (mut x, mut y) = (0i32, 0i32);
    for item in order.iter_mut() {
        *item = (y as usize, x as usize);
        if (x + y) % 2 == 0 {
            // moving up-right
            if x == 7 {
                y += 1;
            } else if y == 0 {
                x += 1;
            } else {
                x += 1;
                y -= 1;
            }
        } else {
            // moving down-left
            if y == 7 {
                x += 1;
            } else if x == 0 {
                y += 1;
            } else {
                x -= 1;
                y += 1;
            }
        }
    }
    order
}

/// Estimated entropy-coded size, in bits, of a quantized block: a
/// run-length/magnitude model (zero runs are cheap, each nonzero costs
/// `3 + 2·log2(|level|)` bits plus the run prefix).
pub fn entropy_size_bits(levels: &[[i32; 8]; 8]) -> usize {
    let order = zigzag();
    let mut bits = 0usize;
    let mut run = 0usize;
    for &(y, x) in &order {
        let l = levels[y][x];
        if l == 0 {
            run += 1;
        } else {
            bits += 2 + usize::BITS as usize - (run + 1).leading_zeros() as usize; // run prefix
            bits += 3 + 2 * (32 - (l.unsigned_abs()).leading_zeros() as usize); // magnitude
            run = 0;
        }
    }
    bits + 4 // end-of-block marker
}

/// Sum of absolute differences between two 8×8 blocks.
pub fn sad8(a: &[[i32; 8]; 8], b: &[[i32; 8]; 8]) -> u32 {
    let mut s = 0u32;
    for y in 0..8 {
        for x in 0..8 {
            s += a[y][x].abs_diff(b[y][x]);
        }
    }
    s
}

/// Exhaustive motion search: find the offset in `[−range, range]²` whose
/// reference block (fetched through `fetch(dy, dx)`) minimizes SAD against
/// `cur`. Returns `(dy, dx, sad)`. Cost grows as `(2·range+1)²` — the
/// quality lever for the motion-estimation stage.
pub fn motion_search<F>(cur: &[[i32; 8]; 8], range: i32, mut fetch: F) -> (i32, i32, u32)
where
    F: FnMut(i32, i32) -> [[i32; 8]; 8],
{
    let mut best = (0, 0, u32::MAX);
    for dy in -range..=range {
        for dx in -range..=range {
            let candidate = fetch(dy, dx);
            let s = sad8(cur, &candidate);
            if s < best.2 || (s == best.2 && (dy, dx) < (best.0, best.1)) {
                best = (dy, dx, s);
            }
        }
    }
    best
}

/// Motion-search window for a quality level (`±(1+q)` pixels).
pub fn search_range(quality: usize) -> i32 {
    1 + quality as i32
}

/// Full single-block encode at a quality level: DCT → quantize →
/// entropy-size → reconstruct → distortion. Returns `(bits, sse)`.
pub fn encode_block(block: &[[i32; 8]; 8], quality: usize) -> (usize, u64) {
    let step = quant_step(quality);
    let coeffs = fdct8(block);
    let levels = quantize(&coeffs, step);
    let bits = entropy_size_bits(&levels);
    let recon = idct8(&dequantize(&levels, step));
    let mut sse = 0u64;
    for y in 0..8 {
        for x in 0..8 {
            let d = (block[y][x] - recon[y][x]) as i64;
            sse += (d * d) as u64;
        }
    }
    (bits, sse)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn test_block() -> [[i32; 8]; 8] {
        let mut b = [[0i32; 8]; 8];
        for y in 0..8 {
            for x in 0..8 {
                b[y][x] = (128 + 40 * ((x as i32 + 2 * y as i32) % 3) - 20) & 0xFF;
            }
        }
        b
    }

    #[test]
    fn dct_roundtrip_is_near_lossless() {
        let b = test_block();
        let recon = idct8(&fdct8(&b));
        for y in 0..8 {
            for x in 0..8 {
                assert!(
                    (b[y][x] - recon[y][x]).abs() <= 2,
                    "({y},{x}): {} vs {}",
                    b[y][x],
                    recon[y][x]
                );
            }
        }
    }

    #[test]
    fn dct_dc_of_flat_block() {
        let b = [[100i32; 8]; 8];
        let c = fdct8(&b);
        // DC ≈ 8 · 100 = 800; all AC ≈ 0.
        assert!((c[0][0] - 800).abs() <= 4, "DC = {}", c[0][0]);
        for y in 0..8 {
            for x in 0..8 {
                if (y, x) != (0, 0) {
                    assert!(c[y][x].abs() <= 2, "AC({y},{x}) = {}", c[y][x]);
                }
            }
        }
    }

    #[test]
    fn quantization_roundtrip_error_bounded_by_half_step() {
        let c = fdct8(&test_block());
        for step in [10, 20, 40] {
            let q = quantize(&c, step);
            let d = dequantize(&q, step);
            for y in 0..8 {
                for x in 0..8 {
                    assert!((c[y][x] - d[y][x]).abs() <= step / 2 + 1);
                }
            }
        }
    }

    #[test]
    fn quant_step_is_monotone_in_quality() {
        for q in 1..7 {
            assert!(quant_step(q) < quant_step(q - 1));
        }
        assert_eq!(quant_step(0), 40);
        assert_eq!(quant_step(6), 10);
        assert_eq!(quant_step(100), 4, "floor");
    }

    #[test]
    fn higher_quality_never_fewer_bits_more_distortion() {
        let b = test_block();
        let mut prev_bits = 0;
        let mut prev_sse = u64::MAX;
        for q in 0..7 {
            let (bits, sse) = encode_block(&b, q);
            assert!(bits >= prev_bits, "bits monotone: q={q}");
            assert!(sse <= prev_sse, "distortion anti-monotone: q={q}");
            prev_bits = bits;
            prev_sse = sse;
        }
    }

    #[test]
    fn zigzag_visits_every_cell_once() {
        let order = zigzag();
        let mut seen = [[false; 8]; 8];
        for (y, x) in order {
            assert!(!seen[y][x]);
            seen[y][x] = true;
        }
        assert_eq!(order[0], (0, 0));
        assert_eq!(order[63], (7, 7));
        assert_eq!(order[1], (0, 1));
        assert_eq!(order[2], (1, 0));
    }

    #[test]
    fn entropy_size_of_empty_block_is_just_eob() {
        assert_eq!(entropy_size_bits(&[[0; 8]; 8]), 4);
        let mut one = [[0; 8]; 8];
        one[0][0] = 1;
        assert!(entropy_size_bits(&one) > 4);
    }

    #[test]
    fn motion_search_finds_exact_shift() {
        // A reference plane with a recognizable pattern; the current block
        // is the reference shifted by (2, −1).
        let plane = |y: i32, x: i32| -> i32 { ((x * 7 + y * 13) & 0xFF).abs() };
        let block_at = |oy: i32, ox: i32| -> [[i32; 8]; 8] {
            let mut b = [[0; 8]; 8];
            for y in 0..8 {
                for x in 0..8 {
                    b[y as usize][x as usize] = plane(y + oy, x + ox);
                }
            }
            b
        };
        let cur = block_at(2, -1);
        let (dy, dx, sad) = motion_search(&cur, 3, block_at);
        assert_eq!((dy, dx), (2, -1));
        assert_eq!(sad, 0);
    }

    #[test]
    fn search_range_grows_with_quality() {
        assert_eq!(search_range(0), 1);
        assert_eq!(search_range(6), 7);
    }

    #[test]
    fn sad_is_zero_only_on_identical_blocks() {
        let b = test_block();
        assert_eq!(sad8(&b, &b), 0);
        let mut c = b;
        c[3][4] += 5;
        assert_eq!(sad8(&b, &c), 5);
    }
}
