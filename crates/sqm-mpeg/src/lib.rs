//! # sqm-mpeg — the MPEG-encoder workload of the paper's evaluation
//!
//! §4.1 of the paper evaluates on an MPEG video encoder: 29 frames of
//! 352×288 pixels, each split into 396 macroblocks of 256 pixels, scheduled
//! into `|A| = 1,189` actions (three pipeline actions per macroblock plus
//! one frame action) with `|Q| = 7` quality levels and a global deadline of
//! 30 s. The original 7,000-line C encoder is not available; this crate
//! builds the closest synthetic equivalent:
//!
//! * [`video`] — a procedural video source with per-macroblock texture and
//!   motion complexity, scene cuts, and deterministic seeding. The Quality
//!   Manager never looks at pixels; what matters is that per-action
//!   execution times vary with content, burst at scene changes, and stay
//!   bounded by the worst case — which this source drives.
//! * [`blocks`] — real integer signal-processing kernels (8×8 DCT,
//!   quantization, run-length entropy size, exhaustive motion search) so
//!   that benchmarks exercise genuine CPU work whose cost scales with the
//!   quality level exactly like the paper's encoder actions.
//! * [`encoder`] — assembles the `3·N + 1`-action parameterized system
//!   (1,189 actions for the paper's 396 macroblocks), its quality-dependent
//!   timing tables, and the execution-time source that ties actual times to
//!   the video's content.
//! * [`metrics`] — a PSNR-style rate/distortion proxy mapping chosen
//!   quality levels to perceived video quality (the paper's "significant
//!   improvement of the overall video quality").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod encoder;
pub mod gop;
pub mod metrics;
pub mod rate;
pub mod video;

pub use encoder::{EncoderConfig, EncoderExec, MpegEncoder};
pub use gop::{FrameKind, GopPattern};
pub use video::SyntheticVideo;
