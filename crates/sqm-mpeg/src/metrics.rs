//! Rate/distortion metrics — "overall video quality".
//!
//! The paper argues that lower QM overhead translates into higher quality
//! levels and therefore "a significant improvement of the overall video
//! quality" (Fig. 7). These helpers make that claim measurable on the
//! synthetic encoder: encoding a macroblock's real pixel blocks at the
//! quality level the manager chose yields a PSNR figure, and per-frame PSNR
//! aggregates a trace into the paper's quality-per-frame curves.

use crate::blocks::encode_block;
use crate::encoder::{MpegEncoder, Stage};
use sqm_core::trace::{CycleTrace, Trace};

/// PSNR (dB) of one macroblock encoded at `quality` — runs the real DCT /
/// quantization pipeline on the macroblock's four luma blocks.
pub fn macroblock_psnr(enc: &MpegEncoder, frame: usize, mb: usize, quality: usize) -> f64 {
    let mut sse = 0u64;
    for sub in 0..4 {
        let block = enc.video().block(frame, mb, sub);
        let (_, s) = encode_block(&block, quality);
        sse += s;
    }
    let n_px = 4.0 * 64.0;
    if sse == 0 {
        return 99.0; // lossless within fixed-point error
    }
    let mse = sse as f64 / n_px;
    (10.0 * (255.0f64 * 255.0 / mse).log10()).min(99.0)
}

/// Per-cycle mean PSNR of a trace: each macroblock is scored at the
/// quality level its DCT action ran with.
pub fn frame_psnr(enc: &MpegEncoder, cycle: &CycleTrace) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    let frame = cycle.cycle % enc.video().frames.max(1);
    for r in &cycle.records {
        if enc.stage(r.action) == Stage::DctQuant {
            let mb = enc
                .macroblock(r.action)
                .expect("DCT actions have a macroblock");
            sum += macroblock_psnr(enc, frame, mb, r.quality.index());
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Per-cycle PSNR series of a whole run (the Fig. 7 companion in dB).
pub fn video_quality_series(enc: &MpegEncoder, trace: &Trace) -> Vec<f64> {
    trace.cycles.iter().map(|c| frame_psnr(enc, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;
    use sqm_core::controller::{ConstantExec, CycleRunner, OverheadModel};
    use sqm_core::manager::NumericManager;
    use sqm_core::policy::MixedPolicy;
    use sqm_core::time::Time;

    #[test]
    fn psnr_increases_with_quality() {
        let enc = MpegEncoder::new(EncoderConfig::tiny(5)).unwrap();
        for mb in 0..3 {
            let mut prev = 0.0;
            for q in 0..7 {
                let p = macroblock_psnr(&enc, 1, mb, q);
                assert!(
                    p >= prev - 1e-9,
                    "PSNR monotone at mb {mb}, q {q}: {p} < {prev}"
                );
                assert!((10.0..=99.0).contains(&p));
                prev = p;
            }
        }
    }

    #[test]
    fn frame_psnr_from_trace() {
        let enc = MpegEncoder::new(EncoderConfig::tiny(5)).unwrap();
        let sys = enc.system();
        let policy = MixedPolicy::new(sys);
        let mut runner =
            CycleRunner::new(sys, NumericManager::new(sys, &policy), OverheadModel::ZERO);
        let cycle = runner.run_cycle(0, Time::ZERO, &mut ConstantExec::average(sys.table()));
        let psnr = frame_psnr(&enc, &cycle);
        assert!(psnr > 20.0, "plausible PSNR, got {psnr}");
    }

    #[test]
    fn higher_quality_trace_scores_higher() {
        use sqm_core::trace::ActionRecord;
        let enc = MpegEncoder::new(EncoderConfig::tiny(5)).unwrap();
        let mk = |q: u8| -> CycleTrace {
            let records = (0..enc.system().n_actions())
                .map(|a| ActionRecord {
                    action: a,
                    quality: sqm_core::quality::Quality::new(q),
                    decided: true,
                    qm_work: 0,
                    qm_overhead: Time::ZERO,
                    start: Time::ZERO,
                    duration: Time::ZERO,
                    end: Time::ZERO,
                    missed_deadline: false,
                    infeasible: false,
                })
                .collect();
            CycleTrace {
                cycle: 0,
                start: Time::ZERO,
                records,
            }
        };
        assert!(frame_psnr(&enc, &mk(6)) > frame_psnr(&enc, &mk(0)));
    }

    #[test]
    fn series_covers_all_cycles() {
        let enc = MpegEncoder::new(EncoderConfig::tiny(5)).unwrap();
        let trace = Trace {
            cycles: vec![
                CycleTrace {
                    cycle: 0,
                    start: Time::ZERO,
                    records: vec![],
                },
                CycleTrace {
                    cycle: 1,
                    start: Time::ZERO,
                    records: vec![],
                },
            ],
        };
        let series = video_quality_series(&enc, &trace);
        assert_eq!(series, vec![0.0, 0.0], "empty cycles score zero");
    }
}
