//! Procedural video source.
//!
//! Generates a deterministic synthetic sequence with the two properties the
//! paper's timing model depends on: per-macroblock **texture** (drives DCT
//! and entropy-coding cost) and **motion** (drives motion-estimation cost),
//! both varying smoothly within a scene and jumping at scene cuts. The
//! generator is pure: `(seed, frame, macroblock)` fully determines every
//! pixel and complexity value, so all experiments are replayable.

/// SplitMix64 — tiny, high-quality stateless hash for procedural content.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic synthetic video clip.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticVideo {
    /// Width in pixels (multiple of 16).
    pub width: usize,
    /// Height in pixels (multiple of 16).
    pub height: usize,
    /// Frames in the clip.
    pub frames: usize,
    /// Scene length in frames (a cut re-rolls texture/motion statistics).
    pub scene_len: usize,
    seed: u64,
}

impl SyntheticVideo {
    /// The paper's clip: 29 frames of 352×288 (396 macroblocks).
    pub fn paper_clip(seed: u64) -> SyntheticVideo {
        SyntheticVideo::new(352, 288, 29, 8, seed)
    }

    /// A custom clip. Dimensions are rounded down to whole macroblocks.
    pub fn new(
        width: usize,
        height: usize,
        frames: usize,
        scene_len: usize,
        seed: u64,
    ) -> SyntheticVideo {
        SyntheticVideo {
            width: width / 16 * 16,
            height: height / 16 * 16,
            frames,
            scene_len: scene_len.max(1),
            seed,
        }
    }

    /// Macroblocks per frame (`396` for 352×288).
    pub fn macroblocks(&self) -> usize {
        (self.width / 16) * (self.height / 16)
    }

    /// Macroblock grid width.
    pub fn mb_cols(&self) -> usize {
        self.width / 16
    }

    fn scene(&self, frame: usize) -> u64 {
        (frame / self.scene_len) as u64
    }

    /// Scene-level statistics: `(texture_bias, motion_bias)` in `[0, 1]`.
    fn scene_stats(&self, frame: usize) -> (f64, f64) {
        let s = self.scene(frame);
        (
            unit(self.seed ^ s.wrapping_mul(0x517C_C1B7_2722_0A95)),
            unit(self.seed ^ s.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xABCD),
        )
    }

    /// Texture energy of a macroblock in `[0, 1]`: how much spatial detail
    /// its pixels carry. Smooth across neighbouring macroblocks.
    pub fn texture(&self, frame: usize, mb: usize) -> f64 {
        let (bias, _) = self.scene_stats(frame);
        let col = (mb % self.mb_cols()) as u64;
        let row = (mb / self.mb_cols()) as u64;
        // Low-frequency spatial field + per-block detail.
        let field = unit(self.seed ^ self.scene(frame) ^ (col / 4) << 17 ^ (row / 4) << 31);
        let detail = unit(self.seed ^ (frame as u64) << 40 ^ (mb as u64));
        (0.5 * bias + 0.35 * field + 0.15 * detail).clamp(0.0, 1.0)
    }

    /// Motion magnitude of a macroblock in `[0, 1]`: how far its content
    /// moved since the previous frame. Frame 0 (intra) has zero motion.
    pub fn motion(&self, frame: usize, mb: usize) -> f64 {
        if frame == 0 || frame.is_multiple_of(self.scene_len) {
            // Scene cut / intra frame: no usable reference, the encoder
            // falls back to intra coding whose cost we fold into texture.
            return 0.0;
        }
        let (_, bias) = self.scene_stats(frame);
        let wobble = unit(self.seed ^ (frame as u64) << 20 ^ (mb as u64) << 2 ^ 0x77);
        (0.6 * bias + 0.4 * wobble).clamp(0.0, 1.0)
    }

    /// One 8×8 luma block of a macroblock (`sub ∈ 0..4`), as pixel values.
    /// Pixels combine a directional gradient (DC + low frequency) with
    /// texture-scaled noise, so DCT/quantization behave like they do on
    /// natural imagery.
    pub fn block(&self, frame: usize, mb: usize, sub: usize) -> [[i32; 8]; 8] {
        let tex = self.texture(frame, mb);
        let base = 60 + (120.0 * unit(self.seed ^ (mb as u64) << 13 ^ 0x9)) as i32;
        let gx = (8.0 * unit(self.seed ^ (mb as u64) << 5 ^ 0x2)) as i32 - 4;
        let gy = (8.0 * unit(self.seed ^ (mb as u64) << 9 ^ 0x3)) as i32 - 4;
        let mut out = [[0i32; 8]; 8];
        for (y, row) in out.iter_mut().enumerate() {
            for (x, px) in row.iter_mut().enumerate() {
                let key = self.seed
                    ^ (frame as u64) << 48
                    ^ (mb as u64) << 16
                    ^ (sub as u64) << 8
                    ^ ((y * 8 + x) as u64);
                let noise = (unit(key) - 0.5) * 2.0 * 90.0 * tex;
                let v = base + gx * x as i32 + gy * y as i32 + noise as i32;
                *px = v.clamp(0, 255);
            }
        }
        out
    }

    /// Combined complexity factor for an encoder action on this macroblock,
    /// weighted for the pipeline stage: the result multiplies the stage's
    /// *average* execution time and lands in roughly `[0.55, 1.65]`.
    pub fn complexity(&self, frame: usize, mb: usize, texture_w: f64, motion_w: f64) -> f64 {
        let t = self.texture(frame, mb);
        let m = self.motion(frame, mb);
        let mix = (texture_w * t + motion_w * m) / (texture_w + motion_w).max(1e-9);
        0.55 + 1.1 * mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clip_geometry() {
        let v = SyntheticVideo::paper_clip(1);
        assert_eq!(v.macroblocks(), 396);
        assert_eq!(v.mb_cols(), 22);
        assert_eq!(v.frames, 29);
    }

    #[test]
    fn determinism() {
        let a = SyntheticVideo::paper_clip(7);
        let b = SyntheticVideo::paper_clip(7);
        assert_eq!(a.block(3, 100, 2), b.block(3, 100, 2));
        assert_eq!(a.texture(5, 9), b.texture(5, 9));
        let c = SyntheticVideo::paper_clip(8);
        assert_ne!(a.block(3, 100, 2), c.block(3, 100, 2), "seed matters");
    }

    #[test]
    fn ranges_are_respected() {
        let v = SyntheticVideo::paper_clip(42);
        for frame in 0..v.frames {
            for mb in (0..v.macroblocks()).step_by(37) {
                let t = v.texture(frame, mb);
                let m = v.motion(frame, mb);
                assert!((0.0..=1.0).contains(&t));
                assert!((0.0..=1.0).contains(&m));
                let c = v.complexity(frame, mb, 1.0, 1.0);
                assert!((0.55..=1.65).contains(&c), "complexity {c}");
            }
        }
    }

    #[test]
    fn scene_cuts_reset_motion() {
        let v = SyntheticVideo::new(64, 64, 20, 5, 3);
        for frame in [0, 5, 10, 15] {
            for mb in 0..v.macroblocks() {
                assert_eq!(v.motion(frame, mb), 0.0, "intra frame {frame}");
            }
        }
        // Mid-scene frames generally have motion.
        let any_motion = (0..v.macroblocks()).any(|mb| v.motion(7, mb) > 0.0);
        assert!(any_motion);
    }

    #[test]
    fn scene_changes_statistics() {
        let v = SyntheticVideo::new(352, 288, 29, 4, 11);
        let mean_tex = |frame: usize| -> f64 {
            (0..v.macroblocks())
                .map(|mb| v.texture(frame, mb))
                .sum::<f64>()
                / v.macroblocks() as f64
        };
        // Different scenes should (with overwhelming probability for this
        // seed) have visibly different mean texture.
        assert!((mean_tex(0) - mean_tex(8)).abs() > 0.01);
    }

    #[test]
    fn pixels_are_bytes() {
        let v = SyntheticVideo::paper_clip(5);
        let b = v.block(2, 17, 1);
        assert!(b.iter().flatten().all(|&p| (0..=255).contains(&p)));
        // Textured blocks are not flat.
        let min = b.iter().flatten().min().unwrap();
        let max = b.iter().flatten().max().unwrap();
        assert!(max > min);
    }

    #[test]
    fn dimensions_round_to_macroblocks() {
        let v = SyntheticVideo::new(100, 100, 1, 1, 0);
        assert_eq!(v.width, 96);
        assert_eq!(v.height, 96);
        assert_eq!(v.macroblocks(), 36);
    }
}
