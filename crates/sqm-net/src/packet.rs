//! Deterministic synthetic packet traffic.
//!
//! Generates traffic with the cost-relevant structure of a real edge link:
//! a fixed population of **flows**, each with its own protocol, packet-size
//! profile and payload entropy (bulk TLS transfers are large and
//! incompressible, telemetry is small and highly compressible, …), plus
//! per-packet wobble. `(seed, batch, index)` fully determines every packet,
//! so every experiment is replayable — the same construction as the video
//! and audio sources.

/// SplitMix64 — stateless hash (same construction as the video source).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// Transport protocol of a flow — drives parse/classify cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// Plain TCP (cheap headers, mid-size packets).
    Tcp,
    /// UDP datagrams (cheapest headers, small packets).
    Udp,
    /// QUIC (encrypted transport headers — the most parse work).
    Quic,
}

impl Proto {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Proto::Tcp => "tcp",
            Proto::Udp => "udp",
            Proto::Quic => "quic",
        }
    }

    /// Relative header-processing weight (UDP = 1.0).
    pub fn parse_weight(self) -> f64 {
        match self {
            Proto::Tcp => 1.15,
            Proto::Udp => 1.0,
            Proto::Quic => 1.35,
        }
    }
}

/// One packet as the pipeline sees it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Packet {
    /// Flow the packet belongs to (index into the traffic's population).
    pub flow: usize,
    /// Wire size in bytes.
    pub bytes: usize,
    /// Payload entropy in `[0, 1]`: 0 = trivially compressible,
    /// 1 = already compressed/encrypted (incompressible).
    pub entropy: f64,
    /// Transport protocol.
    pub proto: Proto,
    /// Seed from which kernels synthesize the payload bytes.
    pub payload_seed: u64,
}

/// A deterministic packet stream, batch-addressable.
///
/// The generator is pure: `(seed, batch, index)` fully determines the
/// packet, so batches can be revisited in any order (trace replay, fleet
/// sharding) without keeping state.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticTraffic {
    /// Number of concurrent flows in the population.
    pub n_flows: usize,
    /// Nominal average packet size in bytes (the line-rate calibration
    /// point; actual sizes vary per flow and packet).
    pub avg_bytes: usize,
    seed: u64,
}

impl SyntheticTraffic {
    /// A traffic population of `n_flows` flows averaging `avg_bytes` per
    /// packet.
    pub fn new(n_flows: usize, avg_bytes: usize, seed: u64) -> SyntheticTraffic {
        SyntheticTraffic {
            n_flows: n_flows.max(1),
            avg_bytes: avg_bytes.max(64),
            seed,
        }
    }

    /// The flow an `(batch, index)` slot carries. Flows are interleaved
    /// with a per-batch phase so batches sample the population unevenly
    /// (bursts of one flow), like a real queue.
    pub fn flow_of(&self, batch: usize, index: usize) -> usize {
        let phase = splitmix64(self.seed ^ (batch as u64) << 20 ^ 0x0F10) as usize;
        (index + phase) % self.n_flows
    }

    /// Protocol of a flow (fixed per flow).
    pub fn proto(&self, flow: usize) -> Proto {
        match splitmix64(self.seed ^ (flow as u64).wrapping_mul(0x9E3779B1) ^ 0x51) % 5 {
            0 | 1 => Proto::Tcp,
            2 | 3 => Proto::Udp,
            _ => Proto::Quic,
        }
    }

    /// Flow-level payload entropy bias in `[0.15, 0.95]` (fixed per flow:
    /// a media stream stays incompressible, telemetry stays compressible).
    pub fn flow_entropy(&self, flow: usize) -> f64 {
        0.15 + 0.8 * unit(self.seed ^ (flow as u64).wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// Flow-level size bias in `[0.3, 1.8]` of the nominal average.
    pub fn flow_size_bias(&self, flow: usize) -> f64 {
        0.3 + 1.5 * unit(self.seed ^ (flow as u64).wrapping_mul(0x517C_C1B7_2722_0A95))
    }

    /// The packet at `(batch, index)`.
    pub fn packet(&self, batch: usize, index: usize) -> Packet {
        let flow = self.flow_of(batch, index);
        let wobble = 0.7 + 0.6 * unit(self.seed ^ (batch as u64) << 24 ^ (index as u64) << 2);
        let bytes = ((self.avg_bytes as f64) * self.flow_size_bias(flow) * wobble) as usize;
        let entropy = (self.flow_entropy(flow)
            + 0.1 * (unit(self.seed ^ (batch as u64) << 33 ^ (index as u64) << 7 ^ 0xE) - 0.5))
            .clamp(0.0, 1.0);
        Packet {
            flow,
            bytes: bytes.clamp(64, 9_000),
            entropy,
            proto: self.proto(flow),
            payload_seed: splitmix64(self.seed ^ (batch as u64) << 17 ^ (index as u64) ^ 0xBEEF),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = SyntheticTraffic::new(16, 1500, 1);
        let b = SyntheticTraffic::new(16, 1500, 1);
        let c = SyntheticTraffic::new(16, 1500, 2);
        assert_eq!(a.packet(3, 7), b.packet(3, 7));
        assert_ne!(a.packet(3, 7), c.packet(3, 7));
    }

    #[test]
    fn packets_stay_in_contract_ranges() {
        let t = SyntheticTraffic::new(8, 1500, 9);
        for batch in 0..16 {
            for i in 0..32 {
                let p = t.packet(batch, i);
                assert!(p.flow < 8);
                assert!((64..=9_000).contains(&p.bytes));
                assert!((0.0..=1.0).contains(&p.entropy));
            }
        }
    }

    #[test]
    fn flow_population_covers_all_protocols() {
        let t = SyntheticTraffic::new(32, 1500, 3);
        let protos: Vec<Proto> = (0..32).map(|f| t.proto(f)).collect();
        assert!(protos.contains(&Proto::Tcp));
        assert!(protos.contains(&Proto::Udp));
        assert!(protos.contains(&Proto::Quic));
    }

    #[test]
    fn flow_statistics_are_flow_stable() {
        let t = SyntheticTraffic::new(8, 1500, 5);
        // Same flow observed in different batches keeps its identity.
        let f = t.flow_of(0, 0);
        let batches_with_f: Vec<usize> = (0..20)
            .filter_map(|b| (0..8).find(|&i| t.flow_of(b, i) == f).map(|i| b * 8 + i))
            .collect();
        assert!(batches_with_f.len() > 1, "flow recurs across batches");
        assert_eq!(t.proto(f), t.proto(f));
        assert_eq!(t.flow_entropy(f), t.flow_entropy(f));
    }
}
