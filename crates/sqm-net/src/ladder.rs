//! The per-packet quality ladder.
//!
//! The paper's quality level is one scalar; a packet pipeline spends its
//! budget on three levers at once — cryptographic strength, compression
//! effort, and deep-packet-inspection depth. A [`QualityLadder`] maps each
//! scalar quality level to one [`Rung`] fixing all three, **monotone in
//! every lever** so Definition 1's non-decreasing execution times hold by
//! construction: stepping the manager's quality up never makes any stage
//! cheaper.

use sqm_core::quality::Quality;

/// Cipher strength applied by the crypto stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CryptoStrength {
    /// Integrity only: checksum, no encryption.
    Integrity,
    /// Lightweight stream cipher (few ARX rounds).
    Light,
    /// Standard cipher (full ARX rounds).
    Standard,
    /// Strong cipher (double rounds + rekey).
    Strong,
}

impl CryptoStrength {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CryptoStrength::Integrity => "integrity",
            CryptoStrength::Light => "light",
            CryptoStrength::Standard => "standard",
            CryptoStrength::Strong => "strong",
        }
    }

    /// ARX mixing rounds the kernel runs per payload word.
    pub fn rounds(self) -> usize {
        match self {
            CryptoStrength::Integrity => 1,
            CryptoStrength::Light => 4,
            CryptoStrength::Standard => 8,
            CryptoStrength::Strong => 16,
        }
    }
}

/// One rung of the ladder: the lever settings of a single quality level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rung {
    /// Cipher strength.
    pub crypto: CryptoStrength,
    /// Compression effort level `0..=9` (0 = store, 9 = max effort).
    pub compression: u8,
    /// How many payload bytes DPI inspects.
    pub dpi_depth: usize,
}

/// Maps scalar quality levels to lever settings, monotone per lever.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QualityLadder {
    rungs: Vec<Rung>,
}

impl QualityLadder {
    /// The standard ladder for `n` quality levels (`n ≥ 1`): levers ramp
    /// from (integrity, store, 64 B peek) at the bottom to (strong cipher,
    /// max-effort compression, 2 KiB inspection) at the top.
    pub fn standard(n: usize) -> QualityLadder {
        let n = n.max(1);
        let rungs = (0..n)
            .map(|q| {
                // Position in [0, 1] (a single rung sits at the bottom).
                let t = if n == 1 {
                    0.0
                } else {
                    q as f64 / (n - 1) as f64
                };
                let crypto = match (t * 3.0).round() as usize {
                    0 => CryptoStrength::Integrity,
                    1 => CryptoStrength::Light,
                    2 => CryptoStrength::Standard,
                    _ => CryptoStrength::Strong,
                };
                Rung {
                    crypto,
                    compression: (t * 9.0).round() as u8,
                    dpi_depth: 64 + (t * (2_048.0 - 64.0)).round() as usize,
                }
            })
            .collect();
        QualityLadder { rungs }
    }

    /// Number of rungs (= quality levels).
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// `true` for an empty ladder (never produced by the constructors).
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// The rung of a quality level (clamped to the top).
    pub fn rung(&self, q: Quality) -> Rung {
        self.rungs[q.index().min(self.rungs.len() - 1)]
    }

    /// All rungs, bottom to top.
    pub fn rungs(&self) -> &[Rung] {
        &self.rungs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_ladder_is_monotone_in_every_lever() {
        for n in 1..=9 {
            let ladder = QualityLadder::standard(n);
            assert_eq!(ladder.len(), n);
            for w in ladder.rungs().windows(2) {
                assert!(w[1].crypto >= w[0].crypto, "crypto monotone");
                assert!(w[1].compression >= w[0].compression, "compression monotone");
                assert!(w[1].dpi_depth >= w[0].dpi_depth, "dpi monotone");
            }
        }
    }

    #[test]
    fn ladder_spans_the_lever_ranges() {
        let ladder = QualityLadder::standard(5);
        let bottom = ladder.rungs()[0];
        let top = ladder.rungs()[4];
        assert_eq!(bottom.crypto, CryptoStrength::Integrity);
        assert_eq!(top.crypto, CryptoStrength::Strong);
        assert_eq!(bottom.compression, 0);
        assert_eq!(top.compression, 9);
        assert_eq!(bottom.dpi_depth, 64);
        assert_eq!(top.dpi_depth, 2_048);
    }

    #[test]
    fn rung_lookup_clamps() {
        let ladder = QualityLadder::standard(3);
        assert_eq!(ladder.rung(Quality::new(9)), ladder.rungs()[2]);
        assert!(!ladder.is_empty());
        assert!(CryptoStrength::Strong.rounds() > CryptoStrength::Integrity.rounds());
        assert_eq!(CryptoStrength::Light.label(), "light");
    }
}
