//! # sqm-net — network packet-pipeline workload
//!
//! A third application domain for the quality-management method, and the
//! stress case for the event-driven front-end: packets arrive in bursts at
//! times the controller does not choose, and the deadline is not an
//! artistic choice but a **line-rate budget** — at `R` Mbit/s a batch of
//! `P` average-size packets must clear the pipeline in the time it
//! occupies the wire, or the NIC queue grows without bound. One cycle
//! processes a batch of packets through four atomic actions each:
//!
//! 1. **parse** — header parse + flow classification ([`packet`]);
//! 2. **dpi** — deep packet inspection to the rung's depth;
//! 3. **crypto** — encryption at the rung's cipher strength;
//! 4. **compress** — compression at the rung's effort level, then forward.
//!
//! The scalar quality level decomposes through a [`ladder::QualityLadder`]
//! into three monotone levers — DPI depth × cipher strength × compression
//! effort — so execution times are non-decreasing in quality exactly as
//! Definition 1 requires. [`pipeline`] assembles the scheduled
//! [`sqm_core::system::ParameterizedSystem`] with per-stage cost tables
//! calibrated against the line-rate budget, plus a content-driven
//! execution-time source over a deterministic [`packet`] traffic
//! generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ladder;
pub mod packet;
pub mod pipeline;

pub use ladder::{CryptoStrength, QualityLadder, Rung};
pub use packet::{Packet, Proto, SyntheticTraffic};
pub use pipeline::{NetConfig, NetExec, NetPipeline, NetStage};
