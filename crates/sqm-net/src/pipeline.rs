//! The scheduled packet pipeline as a parameterized system.
//!
//! One cycle processes a **batch** of packets against a line-rate deadline:
//! at `R` Mbit/s with `B`-byte average packets, a batch of `P` packets must
//! leave the box within `P · (8000·B / R)` ns or the NIC queue grows
//! without bound. Each packet runs four atomic actions — parse/classify,
//! deep packet inspection, encrypt, compress-and-forward — whose cost grows
//! with the quality rung ([`crate::ladder`]): deeper DPI, stronger
//! ciphers, harder compression. That is exactly the paper's shape (per-item
//! quality/deadline trade-offs) in a third domain, mirroring the MPEG and
//! audio workloads' structure.

use crate::ladder::QualityLadder;
use crate::packet::{Packet, SyntheticTraffic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqm_core::action::{ActionId, ActionInfo, DeadlineMap};
use sqm_core::controller::ExecutionTimeSource;
use sqm_core::error::BuildError;
use sqm_core::quality::Quality;
use sqm_core::system::ParameterizedSystem;
use sqm_core::time::Time;
use sqm_core::timing::TimeTableBuilder;

/// Pipeline stage of a packet action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetStage {
    /// Header parse + flow classification (quality-independent).
    Parse,
    /// Deep packet inspection to the rung's depth.
    Dpi,
    /// Encryption at the rung's cipher strength.
    Crypto,
    /// Compression at the rung's effort level, then forward.
    Compress,
}

impl NetStage {
    /// Kind tag stored in [`ActionInfo::kind`].
    pub fn kind(self) -> u32 {
        match self {
            NetStage::Parse => 0,
            NetStage::Dpi => 1,
            NetStage::Crypto => 2,
            NetStage::Compress => 3,
        }
    }

    fn from_kind(kind: u32) -> NetStage {
        match kind {
            0 => NetStage::Parse,
            1 => NetStage::Dpi,
            2 => NetStage::Crypto,
            _ => NetStage::Compress,
        }
    }

    /// All four stages in pipeline order.
    pub const ALL: [NetStage; 4] = [
        NetStage::Parse,
        NetStage::Dpi,
        NetStage::Crypto,
        NetStage::Compress,
    ];

    /// Average execution time (ns) at a quality level — the calibrated
    /// per-stage cost table. Parse is flat; the three quality levers each
    /// drive one stage.
    pub fn av_ns(self, q: usize) -> i64 {
        let q = q as i64;
        match self {
            NetStage::Parse => 2_000,
            NetStage::Dpi => 1_500 + 2_500 * q,
            NetStage::Crypto => 2_000 + 3_000 * q,
            NetStage::Compress => 2_500 + 3_500 * q,
        }
    }

    /// Worst-case execution time (ns) at a quality level (an adversarial
    /// packet: maximum size, incompressible payload, cache-cold tables).
    pub fn wc_ns(self, q: usize) -> i64 {
        self.av_ns(q) * 2
    }
}

/// Pipeline configuration. The per-cycle deadline is *derived*, not
/// chosen: [`NetConfig::batch_period`] is the time a batch occupies the
/// wire at the configured line rate.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Packets per batch (one cycle = one batch).
    pub packets_per_batch: usize,
    /// Quality levels (ladder rungs).
    pub n_quality: usize,
    /// Line rate in Mbit/s — the deadline budget's source.
    pub line_rate_mbps: u64,
    /// Nominal average packet size in bytes.
    pub avg_packet_bytes: usize,
    /// Concurrent flows in the synthetic population.
    pub n_flows: usize,
    /// Traffic seed.
    pub seed: u64,
}

impl NetConfig {
    /// The CI-scale configuration: 64 packets per batch (256 actions),
    /// 5 quality levels, 400 Mbit/s of 1500-byte packets over 32 flows —
    /// sustainable in expectation at rung 2, infeasible at rung 4, ~45 %
    /// worst-case margin at rung 0. The same role `EncoderConfig::small`
    /// plays for MPEG.
    pub fn small(seed: u64) -> NetConfig {
        NetConfig {
            packets_per_batch: 64,
            n_quality: 5,
            line_rate_mbps: 400,
            avg_packet_bytes: 1_500,
            n_flows: 32,
            seed,
        }
    }

    /// A tiny configuration for tests: 8 packets per batch (32 actions),
    /// same per-packet budget as [`NetConfig::small`].
    pub fn tiny(seed: u64) -> NetConfig {
        NetConfig {
            packets_per_batch: 8,
            n_quality: 5,
            line_rate_mbps: 400,
            avg_packet_bytes: 1_500,
            n_flows: 8,
            seed,
        }
    }

    /// Time one average packet occupies the wire: `8000 · bytes / Mbps`
    /// ns — the per-packet deadline budget.
    pub fn packet_budget(&self) -> Time {
        Time::from_ns((self.avg_packet_bytes as i64 * 8_000) / self.line_rate_mbps.max(1) as i64)
    }

    /// The batch deadline (= cycle period): `packets_per_batch` packet
    /// budgets.
    pub fn batch_period(&self) -> Time {
        self.packet_budget()
            .saturating_mul(self.packets_per_batch as i64)
    }
}

/// The synthetic packet pipeline: traffic source + scheduled system +
/// quality ladder.
#[derive(Clone, Debug)]
pub struct NetPipeline {
    config: NetConfig,
    traffic: SyntheticTraffic,
    ladder: QualityLadder,
    system: ParameterizedSystem,
}

impl NetPipeline {
    /// Build the pipeline's action sequence and timing tables.
    pub fn new(config: NetConfig) -> Result<NetPipeline, BuildError> {
        let traffic = SyntheticTraffic::new(config.n_flows, config.avg_packet_bytes, config.seed);
        let ladder = QualityLadder::standard(config.n_quality);
        let nq = config.n_quality;
        let mut actions = Vec::with_capacity(4 * config.packets_per_batch);
        let mut table = TimeTableBuilder::new();
        for p in 0..config.packets_per_batch {
            for stage in NetStage::ALL {
                actions.push(ActionInfo::with_kind(
                    format!("pkt{p}.{}", stage.kind()),
                    stage.kind(),
                ));
                let wc: Vec<Time> = (0..nq).map(|q| Time::from_ns(stage.wc_ns(q))).collect();
                let av: Vec<Time> = (0..nq).map(|q| Time::from_ns(stage.av_ns(q))).collect();
                table.push_action(&wc, &av);
            }
        }
        let n = actions.len();
        let deadlines = DeadlineMap::single_global(n, config.batch_period());
        let system = ParameterizedSystem::new(actions, table.build()?, deadlines)?;
        Ok(NetPipeline {
            config,
            traffic,
            ladder,
            system,
        })
    }

    /// The scheduled parameterized system (`4 · packets_per_batch`
    /// actions).
    pub fn system(&self) -> &ParameterizedSystem {
        &self.system
    }

    /// The traffic source.
    pub fn traffic(&self) -> &SyntheticTraffic {
        &self.traffic
    }

    /// The quality ladder (crypto × compression × DPI per rung).
    pub fn ladder(&self) -> &QualityLadder {
        &self.ladder
    }

    /// The configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Pipeline stage of an action.
    pub fn stage(&self, action: ActionId) -> NetStage {
        NetStage::from_kind(self.system.action(action).kind)
    }

    /// The batch slot an action processes.
    pub fn packet_of(&self, action: ActionId) -> usize {
        action / 4
    }

    /// The packet an action processes in a given batch.
    pub fn packet(&self, batch: usize, action: ActionId) -> Packet {
        self.traffic.packet(batch, self.packet_of(action))
    }

    /// Execute the *real* kernel of one action at a quality level on
    /// synthesized payload bytes (used by the Criterion benches so the
    /// measured work is genuine). Returns a work token to keep the
    /// optimizer honest.
    pub fn run_action_kernel(&self, batch: usize, action: ActionId, q: Quality) -> u64 {
        let pkt = self.packet(batch, action);
        let rung = self.ladder.rung(q);
        match self.stage(action) {
            NetStage::Parse => kernels::parse(&pkt),
            NetStage::Dpi => kernels::dpi(&pkt, rung.dpi_depth),
            NetStage::Crypto => kernels::crypto(&pkt, rung.crypto.rounds()),
            NetStage::Compress => kernels::compress(&pkt, rung.compression),
        }
    }

    /// Estimated coded bits of one packet at a quality level (the rate
    /// metric: compression converts effort into output size).
    pub fn packet_bits(&self, batch: usize, slot: usize, q: Quality) -> usize {
        let pkt = self.traffic.packet(batch, slot);
        let rung = self.ladder.rung(q);
        kernels::compress(&pkt, rung.compression) as usize
    }

    /// Content-driven execution-time source.
    pub fn exec(&self, jitter: f64, seed: u64) -> NetExec<'_> {
        NetExec {
            net: self,
            rng: StdRng::seed_from_u64(seed),
            jitter,
        }
    }
}

/// Execution-time source for a [`NetPipeline`]: actual times are the stage
/// averages scaled by the packet's content complexity (size, protocol,
/// entropy) and ±`jitter` sampling noise, clamped to the worst case.
pub struct NetExec<'a> {
    net: &'a NetPipeline,
    rng: StdRng,
    jitter: f64,
}

impl NetExec<'_> {
    /// Stage-specific complexity of a packet relative to the calibration
    /// average: parse/DPI/crypto scale with size (and protocol for
    /// parse), compression additionally with payload entropy (hard-to-
    /// compress payloads make the entropy coder work).
    fn complexity(&self, stage: NetStage, pkt: &Packet) -> f64 {
        let size = pkt.bytes as f64 / self.net.config.avg_packet_bytes as f64;
        let c = match stage {
            NetStage::Parse => 0.7 + 0.3 * size * pkt.proto.parse_weight() / 1.15,
            NetStage::Dpi => 0.5 + 0.5 * size,
            NetStage::Crypto => 0.4 + 0.6 * size,
            NetStage::Compress => (0.35 + 0.65 * size) * (0.7 + 0.6 * pkt.entropy),
        };
        c.clamp(0.3, 2.0)
    }
}

impl ExecutionTimeSource for NetExec<'_> {
    fn actual(&mut self, cycle: usize, action: ActionId, q: Quality) -> Time {
        let net = self.net;
        let pkt = net.packet(cycle, action);
        let av = net.system.table().av(action, q).as_ns() as f64;
        let wc = net.system.table().wc(action, q);
        let complexity = self.complexity(net.stage(action), &pkt);
        let jitter = 1.0 + self.rng.gen_range(-self.jitter..=self.jitter);
        let ns = (av * complexity * jitter).round() as i64;
        Time::from_ns(ns.max(0)).min(wc)
    }
}

/// The real per-stage kernels, deterministic in the packet's payload seed.
mod kernels {
    use crate::packet::Packet;

    /// Next word of the synthesized payload stream (xorshift64*).
    #[inline]
    fn next_word(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Header parse + flow classify: checksum the (synthesized) header
    /// words and fold in the 5-tuple hash.
    pub fn parse(pkt: &Packet) -> u64 {
        let mut state = pkt.payload_seed | 1;
        let mut sum = pkt.flow as u64;
        for _ in 0..16 {
            sum = sum.rotate_left(5) ^ next_word(&mut state);
        }
        sum ^ pkt.bytes as u64
    }

    /// Deep packet inspection: scan up to `depth` payload bytes for a
    /// small signature set, counting matches.
    pub fn dpi(pkt: &Packet, depth: usize) -> u64 {
        const SIGNATURES: [u8; 4] = [0x4d, 0x5a, 0x7f, 0x25];
        let scan = depth.min(pkt.bytes);
        let mut state = pkt.payload_seed | 1;
        let mut hits = 0u64;
        let mut i = 0;
        while i < scan {
            let word = next_word(&mut state);
            for b in word.to_le_bytes() {
                if SIGNATURES.contains(&b) {
                    hits += 1;
                }
            }
            i += 8;
        }
        hits
    }

    /// Encrypt: ARX-mix every payload word for `rounds` rounds and return
    /// the running MAC.
    pub fn crypto(pkt: &Packet, rounds: usize) -> u64 {
        let words = pkt.bytes.div_ceil(8);
        let mut state = pkt.payload_seed | 1;
        let mut mac = 0x6a09_e667_f3bc_c908u64;
        for _ in 0..words.min(256) {
            let mut w = next_word(&mut state);
            for r in 0..rounds {
                w = w.wrapping_add(mac).rotate_left((r as u32 % 63) + 1) ^ state;
            }
            mac ^= w;
        }
        mac
    }

    /// Compression estimate: byte-histogram entropy over a window that
    /// grows with the effort level; returns estimated output bits
    /// (incompressible payloads estimate near the input size).
    pub fn compress(pkt: &Packet, level: u8) -> u64 {
        if level == 0 {
            // Store: output = input.
            return (pkt.bytes * 8) as u64;
        }
        let window = (64 << (level as usize).min(6)).min(pkt.bytes);
        let mut state = pkt.payload_seed | 1;
        let mut hist = [0u32; 256];
        let mut i = 0;
        while i < window {
            for b in next_word(&mut state).to_le_bytes() {
                // Skew the synthetic byte distribution by the packet's
                // entropy: low-entropy payloads concentrate on few values.
                let skew = (255.0 * pkt.entropy) as u32;
                hist[(u32::from(b) * skew / 255) as usize] += 1;
            }
            i += 8;
        }
        let total = hist.iter().sum::<u32>() as f64;
        let mut bits_per_byte = 0.0;
        for &h in &hist {
            if h > 0 {
                let p = f64::from(h) / total;
                bits_per_byte -= p * p.log2();
            }
        }
        // Higher effort shaves a few percent more, never below entropy.
        let effort = 1.0 - 0.02 * f64::from(level.min(9));
        ((pkt.bytes as f64 * bits_per_byte * effort).max(64.0)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_core::controller::{CycleRunner, OverheadModel};
    use sqm_core::manager::NumericManager;
    use sqm_core::policy::MixedPolicy;

    #[test]
    fn small_config_shape_and_budget() {
        let net = NetPipeline::new(NetConfig::small(1)).unwrap();
        assert_eq!(net.system().n_actions(), 4 * 64);
        assert_eq!(net.system().qualities().len(), 5);
        // 1500 B at 400 Mbit/s = 30 µs per packet.
        assert_eq!(net.config().packet_budget(), Time::from_us(30));
        assert_eq!(net.config().batch_period(), Time::from_us(64 * 30));
        // Sustainable in expectation at rung 2, infeasible at rung 4.
        let sys = net.system();
        assert!(sys.prefix().av_total(Quality::new(2)) <= net.config().batch_period());
        assert!(sys.prefix().av_total(Quality::new(4)) > net.config().batch_period());
        // Worst-case feasibility margin at rung 0 is comfortable (~45 %).
        let slack = sys.min_quality_slack().as_ns() as f64;
        let period = net.config().batch_period().as_ns() as f64;
        assert!(slack / period > 0.3, "qmin slack {slack}");
    }

    #[test]
    fn action_layout_and_stages() {
        let net = NetPipeline::new(NetConfig::tiny(1)).unwrap();
        assert_eq!(net.stage(0), NetStage::Parse);
        assert_eq!(net.stage(1), NetStage::Dpi);
        assert_eq!(net.stage(2), NetStage::Crypto);
        assert_eq!(net.stage(3), NetStage::Compress);
        assert_eq!(net.packet_of(0), 0);
        assert_eq!(net.packet_of(7), 1);
        assert_eq!(net.system().action(4).name, "pkt1.0");
    }

    #[test]
    fn exec_respects_contract_and_is_deterministic() {
        let net = NetPipeline::new(NetConfig::tiny(3)).unwrap();
        let sample = |seed: u64| -> Vec<i64> {
            let mut e = net.exec(0.1, seed);
            (0..net.system().n_actions())
                .map(|a| e.actual(0, a, Quality::new(3)).as_ns())
                .collect()
        };
        let a = sample(9);
        assert_eq!(a, sample(9));
        assert_ne!(a, sample(10));
        for (action, &ns) in a.iter().enumerate() {
            let wc = net.system().table().wc(action, Quality::new(3)).as_ns();
            assert!(ns >= 0 && ns <= wc, "action {action}: {ns} > wc {wc}");
        }
    }

    #[test]
    fn stage_timing_tables_are_monotone() {
        for stage in NetStage::ALL {
            for q in 1..5 {
                assert!(stage.av_ns(q) >= stage.av_ns(q - 1));
                assert!(stage.wc_ns(q) >= stage.wc_ns(q - 1));
                assert!(stage.wc_ns(q) >= stage.av_ns(q));
            }
        }
    }

    #[test]
    fn controlled_batch_is_safe_and_uses_budget() {
        let net = NetPipeline::new(NetConfig::small(3)).unwrap();
        let sys = net.system();
        let policy = MixedPolicy::new(sys);
        let mut runner =
            CycleRunner::new(sys, NumericManager::new(sys, &policy), OverheadModel::ZERO);
        let mut exec = net.exec(0.15, 7);
        let trace = runner.run_cycle(0, Time::ZERO, &mut exec);
        assert_eq!(trace.stats().misses, 0);
        assert!(
            trace.stats().avg_quality > 1.0,
            "line-rate budget converted into quality, got {}",
            trace.stats().avg_quality
        );
    }

    #[test]
    fn kernels_run_for_every_stage_and_are_stable() {
        let net = NetPipeline::new(NetConfig::tiny(5)).unwrap();
        for action in 0..4 {
            let token = net.run_action_kernel(1, action, Quality::new(3));
            assert_eq!(token, net.run_action_kernel(1, action, Quality::new(3)));
        }
    }

    #[test]
    fn dpi_work_grows_with_depth_and_compression_with_effort() {
        let net = NetPipeline::new(NetConfig::tiny(5)).unwrap();
        let pkt = net.packet(0, 4);
        // Deeper inspection never sees fewer signature hits.
        let shallow = super::kernels::dpi(&pkt, 64);
        let deep = super::kernels::dpi(&pkt, 2_048);
        assert!(deep >= shallow, "dpi hits monotone: {shallow} vs {deep}");
        // More compression effort never grows the estimate; store = input.
        let store = super::kernels::compress(&pkt, 0);
        assert_eq!(store, (pkt.bytes * 8) as u64);
        let low = super::kernels::compress(&pkt, 1);
        let high = super::kernels::compress(&pkt, 9);
        assert!(high <= low, "compression estimate monotone in effort");
        assert!(low <= store);
    }

    /// The rate metric through the public surface: climbing the ladder
    /// spends more effort, so the coded-bits estimate of a packet never
    /// grows with quality (rung 0 stores, the top rung compresses
    /// hardest).
    #[test]
    fn packet_bits_shrink_as_the_ladder_climbs() {
        let net = NetPipeline::new(NetConfig::tiny(5)).unwrap();
        let slot = 2;
        let stored = net.packet_bits(0, slot, Quality::new(0));
        assert_eq!(stored, net.traffic().packet(0, slot).bytes * 8);
        let mid = net.packet_bits(0, slot, Quality::new(2));
        let top = net.packet_bits(0, slot, Quality::new(4));
        assert!(mid <= stored, "rate monotone: {mid} > {stored}");
        assert!(top <= mid, "rate monotone: {top} > {mid}");
        assert!(top > 0);
    }
}
